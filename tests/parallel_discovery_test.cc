// Parallel-equals-sequential equivalence: sharded DHyFD/HyFD runs must
// return bit-identical covers (same FDs, same order) to their sequential
// counterparts at every degree, across the same randomized sweep the
// cross-algorithm property tests use — including the approximate (epsilon >
// 0), arity-bounded, and query-engine paths. Also hammers the lock-sharded
// PartitionCache with concurrent readers; this binary runs under the TSan
// CI leg, so the determinism claims are checked race-free, not just equal.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include "algo/dhyfd.h"
#include "algo/hyfd.h"
#include "fd/cover.h"
#include "partition/partition_cache.h"
#include "query/engine.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::RandomRelation;

struct SweepCase {
  int seed;
  int rows;
  int cols;
  int domain;
  double null_rate;
};

std::vector<SweepCase> SweepCases() {
  return {
      {1, 10, 3, 2, 0.0},   {2, 30, 4, 3, 0.0},   {3, 50, 5, 2, 0.0},
      {4, 80, 4, 5, 0.0},   {5, 25, 6, 2, 0.0},   {6, 120, 3, 8, 0.0},
      {7, 40, 5, 3, 0.2},   {8, 60, 4, 4, 0.1},   {9, 35, 7, 2, 0.0},
      {10, 200, 4, 10, 0.0}, {11, 15, 5, 2, 0.5},  {12, 70, 5, 4, 0.05},
  };
}

/// Bit-identical: same FDs in the same positions, not just the same set.
void ExpectIdenticalCovers(const FdSet& sequential, const FdSet& parallel,
                           const std::string& label) {
  ASSERT_EQ(sequential.fds.size(), parallel.fds.size()) << label;
  for (std::size_t i = 0; i < sequential.fds.size(); ++i) {
    EXPECT_TRUE(sequential.fds[i] == parallel.fds[i])
        << label << " diverges at index " << i << ": sequential "
        << sequential.fds[i].to_string() << " vs parallel "
        << parallel.fds[i].to_string();
  }
}

class ParallelEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, SweepCase>> {};

TEST_P(ParallelEquivalenceSweep, DhyfdParallelEqualsSequential) {
  const auto& [degree, c] = GetParam();
  Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
  DiscoveryResult sequential = Dhyfd(DhyfdOptions{}).discover(r);

  ThreadPool pool(degree);
  DhyfdOptions opt;
  opt.parallelism = degree;
  opt.worker_pool = &pool;
  DiscoveryResult parallel = Dhyfd(opt).discover(r);

  ExpectIdenticalCovers(sequential.fds, parallel.fds,
                        "dhyfd p=" + std::to_string(degree) + " seed=" +
                            std::to_string(c.seed));
  // The same candidates are validated in both runs, so the counters agree
  // too — parallelism changes who does the work, never how much.
  EXPECT_EQ(sequential.stats.validations, parallel.stats.validations);
  EXPECT_EQ(sequential.stats.invalidated, parallel.stats.invalidated);
}

TEST_P(ParallelEquivalenceSweep, HyfdParallelEqualsSequential) {
  const auto& [degree, c] = GetParam();
  Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
  DiscoveryResult sequential = Hyfd(HyfdOptions{}).discover(r);

  ThreadPool pool(degree);
  HyfdOptions opt;
  opt.parallelism = degree;
  opt.worker_pool = &pool;
  DiscoveryResult parallel = Hyfd(opt).discover(r);

  ExpectIdenticalCovers(sequential.fds, parallel.fds,
                        "hyfd p=" + std::to_string(degree) + " seed=" +
                            std::to_string(c.seed));
  EXPECT_EQ(sequential.stats.validations, parallel.stats.validations);
}

TEST_P(ParallelEquivalenceSweep, ApproximateAndBoundedPathsMatch) {
  const auto& [degree, c] = GetParam();
  Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
  ThreadPool pool(degree);
  // epsilon > 0 skips sampling and specializes refuted candidates directly;
  // max_lhs truncates the level loop — both reshape the candidate stream,
  // so each must stay shard-order invariant on its own.
  for (double epsilon : {0.0, 0.1}) {
    for (int max_lhs : {0, 2}) {
      DhyfdOptions seq;
      seq.epsilon = epsilon;
      seq.max_lhs = max_lhs;
      DhyfdOptions par = seq;
      par.parallelism = degree;
      par.worker_pool = &pool;
      DiscoveryResult a = Dhyfd(seq).discover(r);
      DiscoveryResult b = Dhyfd(par).discover(r);
      ExpectIdenticalCovers(
          a.fds, b.fds,
          "dhyfd eps=" + std::to_string(epsilon) + " max_lhs=" +
              std::to_string(max_lhs) + " p=" + std::to_string(degree));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, ParallelEquivalenceSweep,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::ValuesIn(SweepCases())),
    [](const ::testing::TestParamInfo<std::tuple<int, SweepCase>>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param).seed);
    });

TEST(ParallelQueryTest, RankedAnswerIdenticalAtAnyDegree) {
  Relation r = RandomRelation(42, 120, 5, 4, 0.1);
  QueryResult sequential = QueryEngine().execute(r, DiscoveryQuery{});

  ThreadPool pool(4);
  QueryEngineOptions opt;
  opt.parallelism = 4;
  opt.worker_pool = &pool;
  QueryResult parallel = QueryEngine(opt).execute(r, DiscoveryQuery{});

  ASSERT_EQ(sequential.fds.size(), parallel.fds.size());
  for (std::size_t i = 0; i < sequential.fds.size(); ++i) {
    EXPECT_TRUE(sequential.fds[i].fd == parallel.fds[i].fd) << i;
    EXPECT_EQ(sequential.fds[i].score, parallel.fds[i].score) << i;
  }
}

TEST(ParallelQueryTest, EpsilonQueryIdenticalAtAnyDegree) {
  Relation r = RandomRelation(7, 80, 5, 3, 0.0);
  DiscoveryQuery q;
  q.epsilon = 0.05;
  q.max_lhs = 3;
  QueryResult sequential = QueryEngine().execute(r, q);

  ThreadPool pool(3);
  QueryEngineOptions opt;
  opt.parallelism = 3;
  opt.worker_pool = &pool;
  QueryResult parallel = QueryEngine(opt).execute(r, q);

  ASSERT_EQ(sequential.fds.size(), parallel.fds.size());
  for (std::size_t i = 0; i < sequential.fds.size(); ++i) {
    EXPECT_TRUE(sequential.fds[i].fd == parallel.fds[i].fd) << i;
  }
}

TEST(ParallelQueryTest, TopKPathIgnoresParallelismButStillMatches) {
  // The top-k lattice walk is sequential by design; setting a degree must
  // neither change its answer nor touch the pool.
  Relation r = RandomRelation(9, 60, 5, 3, 0.0);
  DiscoveryQuery q;
  q.top_k = 3;
  QueryResult sequential = QueryEngine().execute(r, q);

  ThreadPool pool(4);
  QueryEngineOptions opt;
  opt.parallelism = 4;
  opt.worker_pool = &pool;
  QueryResult parallel = QueryEngine(opt).execute(r, q);

  ASSERT_EQ(sequential.fds.size(), parallel.fds.size());
  for (std::size_t i = 0; i < sequential.fds.size(); ++i) {
    EXPECT_TRUE(sequential.fds[i].fd == parallel.fds[i].fd) << i;
  }
  EXPECT_EQ(pool.tasks_executed(), 0);
}

// ------------------------------------------------- concurrent cache readers

TEST(ConcurrentPartitionCacheTest, ParallelImpliesMatchesSequential) {
  Relation r = RandomRelation(13, 150, 6, 3, 0.1);
  // Deterministic query mix: every 2-attribute LHS against every RHS.
  std::vector<std::pair<AttributeSet, AttrId>> queries;
  for (AttrId a = 0; a < 6; ++a) {
    for (AttrId b = 0; b < 6; ++b) {
      if (a == b) continue;
      AttributeSet x;
      x.set(a);
      x.set(b);
      for (AttrId rhs = 0; rhs < 6; ++rhs) {
        if (!x.test(rhs)) queries.emplace_back(x, rhs);
      }
    }
  }
  std::vector<char> expected(queries.size());
  {
    PartitionCache baseline(r);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expected[i] = baseline.implies(queries[i].first, queries[i].second);
    }
  }
  // A tiny budget forces eviction churn while readers race; answers must
  // not change (evicted partitions are rebuilt, never corrupted).
  PartitionCache cache(r, /*max_entries=*/16, /*max_bytes=*/1 << 14);
  ThreadPool pool(4);
  std::vector<char> got(queries.size());
  pool.parallel_for(queries.size(), 4,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        got[i] = cache.implies(queries[i].first,
                                               queries[i].second);
                      }
                    });
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
  EXPECT_GT(cache.evictions(), 0);
}

TEST(ConcurrentPartitionCacheTest, PinsSurviveEvictionUnderConcurrency) {
  Relation r = RandomRelation(17, 100, 6, 2, 0.0);
  PartitionCache cache(r, /*max_entries=*/4, /*max_bytes=*/1 << 12);
  AttributeSet pinned_set;
  pinned_set.set(0);
  pinned_set.set(1);
  PartitionPin pin = cache.get(pinned_set);
  const int64_t support_before = pin->support();
  const int64_t clusters_before = pin->size();

  // Concurrently churn the cache far past its budget.
  ThreadPool pool(4);
  pool.parallel_for(64, 4, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      AttributeSet x;
      x.set(static_cast<AttrId>(i % 6));
      x.set(static_cast<AttrId>((i / 6 + 1 + i % 5) % 6));
      if (x.count() < 2) x.set(static_cast<AttrId>((i + 3) % 6));
      cache.get(x);
    }
  });
  EXPECT_GT(cache.evictions(), 0);
  // The pin still reads the same immutable partition, evicted or not.
  EXPECT_EQ(pin->support(), support_before);
  EXPECT_EQ(pin->size(), clusters_before);
}

}  // namespace
}  // namespace dhyfd
