#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/update_stream.h"
#include "relation/encoder.h"

namespace dhyfd {
namespace {

DatasetSpec SimpleSpec() {
  DatasetSpec s;
  s.name = "t";
  s.rows = 500;
  s.seed = 7;
  ColumnSpec key{.name = "k", .kind = ColumnKind::kKey};
  ColumnSpec constant{.name = "c", .kind = ColumnKind::kConstant};
  ColumnSpec random{.name = "r", .kind = ColumnKind::kRandom, .domain_size = 10};
  ColumnSpec derived{.name = "d", .kind = ColumnKind::kDerived, .domain_size = 40};
  derived.parents = {2};
  s.columns = {key, constant, random, derived};
  return s;
}

TEST(GeneratorTest, ShapeMatchesSpec) {
  RawTable t = GenerateRawTable(SimpleSpec());
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.num_cols(), 4);
  EXPECT_EQ(t.header[0], "k");
}

TEST(GeneratorTest, Deterministic) {
  RawTable a = GenerateRawTable(SimpleSpec());
  RawTable b = GenerateRawTable(SimpleSpec());
  EXPECT_EQ(a.rows, b.rows);
  DatasetSpec other = SimpleSpec();
  other.seed = 8;
  RawTable c = GenerateRawTable(other);
  EXPECT_NE(a.rows, c.rows);
}

TEST(GeneratorTest, KeyColumnIsUnique) {
  RawTable t = GenerateRawTable(SimpleSpec());
  std::set<std::string> seen;
  for (const auto& row : t.rows) EXPECT_TRUE(seen.insert(row[0]).second);
}

TEST(GeneratorTest, ConstantColumnIsConstant) {
  RawTable t = GenerateRawTable(SimpleSpec());
  for (const auto& row : t.rows) EXPECT_EQ(row[1], t.rows[0][1]);
}

TEST(GeneratorTest, DerivedColumnRespectsPlantedFd) {
  RawTable t = GenerateRawTable(SimpleSpec());
  EncodedRelation e = EncodeRelation(t);
  EXPECT_TRUE(e.relation.satisfies(AttributeSet{2}, 3));
}

TEST(GeneratorTest, RandomColumnStaysInDomain) {
  RawTable t = GenerateRawTable(SimpleSpec());
  std::set<std::string> distinct;
  for (const auto& row : t.rows) distinct.insert(row[2]);
  EXPECT_LE(distinct.size(), 10u);
  EXPECT_GE(distinct.size(), 5u);  // 500 draws over 10 values hit most
}

TEST(GeneratorTest, NullRateProducesNulls) {
  DatasetSpec s = SimpleSpec();
  s.columns[2].null_rate = 0.3;
  RawTable t = GenerateRawTable(s);
  int nulls = 0;
  for (const auto& row : t.rows) {
    if (row[2].empty()) ++nulls;
  }
  EXPECT_GT(nulls, 500 * 0.15);
  EXPECT_LT(nulls, 500 * 0.45);
}

TEST(GeneratorTest, DuplicateRowsCopyNonKeyColumns) {
  DatasetSpec s = SimpleSpec();
  s.duplicate_row_rate = 0.5;
  RawTable t = GenerateRawTable(s);
  int dup_pairs = 0;
  for (int i = 1; i < t.num_rows(); ++i) {
    if (t.rows[i][2] == t.rows[i - 1][2] && t.rows[i][3] == t.rows[i - 1][3]) {
      ++dup_pairs;
    }
  }
  EXPECT_GT(dup_pairs, 100);
}

TEST(GeneratorTest, SkewConcentratesMass) {
  DatasetSpec s;
  s.rows = 2000;
  s.seed = 3;
  ColumnSpec skewed{.name = "z", .kind = ColumnKind::kRandom, .domain_size = 100};
  skewed.skew = 2.0;
  s.columns = {skewed};
  RawTable t = GenerateRawTable(s);
  int top = 0;
  for (const auto& row : t.rows) {
    if (row[0] == "v0") ++top;
  }
  EXPECT_GT(top, 2000 / 100);  // far above uniform share
}

UpdateStreamSpec StreamSpec() {
  UpdateStreamSpec s;
  s.base = SimpleSpec();
  s.initial_rows = 100;
  s.num_batches = 10;
  s.batch_size = 20;
  s.delete_fraction = 0.4;
  s.seed = 11;
  return s;
}

TEST(UpdateStreamTest, ShapeMatchesSpec) {
  UpdateStream s = GenerateUpdateStream(StreamSpec());
  EXPECT_EQ(s.initial.num_rows(), 100);
  EXPECT_EQ(s.initial.num_cols(), 4);
  EXPECT_EQ(static_cast<int>(s.batches.size()), 10);
  for (const UpdateBatch& b : s.batches) {
    EXPECT_LE(b.size(), 20);
    for (const auto& row : b.inserts) {
      EXPECT_EQ(static_cast<int>(row.size()), 4);
    }
  }
  EXPECT_GT(s.total_inserts(), 0);
  EXPECT_GT(s.total_deletes(), 0);
}

TEST(UpdateStreamTest, Deterministic) {
  UpdateStream a = GenerateUpdateStream(StreamSpec());
  UpdateStream b = GenerateUpdateStream(StreamSpec());
  ASSERT_EQ(a.batches.size(), b.batches.size());
  EXPECT_EQ(a.initial.rows, b.initial.rows);
  for (size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].inserts, b.batches[i].inserts);
    EXPECT_EQ(a.batches[i].deletes, b.batches[i].deletes);
  }
  UpdateStreamSpec other = StreamSpec();
  other.seed = 12;
  UpdateStream c = GenerateUpdateStream(other);
  bool differs = false;
  for (size_t i = 0; i < a.batches.size() && !differs; ++i) {
    differs = a.batches[i].deletes != c.batches[i].deletes;
  }
  EXPECT_TRUE(differs);
}

// Replays id assignment (initial rows 0..n-1, each insert the next id) and
// checks every delete targets a row that is live at its batch, exactly once.
TEST(UpdateStreamTest, DeletesAreLiveAndUnique) {
  for (double skew : {0.0, 1.5}) {
    UpdateStreamSpec spec = StreamSpec();
    spec.delete_skew = skew;
    UpdateStream s = GenerateUpdateStream(spec);
    std::set<LiveRowId> live;
    for (int i = 0; i < spec.initial_rows; ++i) live.insert(i);
    LiveRowId next_id = spec.initial_rows;
    for (const UpdateBatch& b : s.batches) {
      for (size_t k = 0; k < b.inserts.size(); ++k) live.insert(next_id++);
      for (LiveRowId id : b.deletes) {
        EXPECT_EQ(live.erase(id), 1u) << "dead or duplicate delete id " << id;
      }
    }
  }
}

TEST(UpdateStreamTest, DeleteFractionShapesTheMix) {
  UpdateStreamSpec spec = StreamSpec();
  spec.delete_fraction = 0.25;
  UpdateStream s = GenerateUpdateStream(spec);
  int64_t ops = s.total_inserts() + s.total_deletes();
  double frac = static_cast<double>(s.total_deletes()) / static_cast<double>(ops);
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.4);

  spec.delete_fraction = 0;
  UpdateStream no_del = GenerateUpdateStream(spec);
  EXPECT_EQ(no_del.total_deletes(), 0);
  EXPECT_EQ(no_del.total_inserts(), 10 * 20);
}

TEST(UpdateStreamTest, SkewTargetsRecentRows) {
  UpdateStreamSpec spec = StreamSpec();
  spec.delete_fraction = 0.5;
  auto mean_victim = [&](double skew) {
    spec.delete_skew = skew;
    UpdateStream s = GenerateUpdateStream(spec);
    double sum = 0;
    int64_t n = 0;
    for (const UpdateBatch& b : s.batches) {
      for (LiveRowId id : b.deletes) {
        sum += static_cast<double>(id);
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  // Higher ids are younger; skewed streams should delete much younger rows.
  EXPECT_GT(mean_victim(2.0), mean_victim(0.0) * 1.2);
}

TEST(GeneratorTest, SelfDependentDerivedThrows) {
  DatasetSpec s;
  s.rows = 10;
  ColumnSpec bad{.name = "x", .kind = ColumnKind::kDerived, .domain_size = 5};
  bad.parents = {0};
  s.columns = {bad};
  EXPECT_THROW(GenerateRawTable(s), std::invalid_argument);
}

}  // namespace
}  // namespace dhyfd
