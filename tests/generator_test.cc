#include "datagen/generator.h"

#include <gtest/gtest.h>

#include "relation/encoder.h"

namespace dhyfd {
namespace {

DatasetSpec SimpleSpec() {
  DatasetSpec s;
  s.name = "t";
  s.rows = 500;
  s.seed = 7;
  ColumnSpec key{.name = "k", .kind = ColumnKind::kKey};
  ColumnSpec constant{.name = "c", .kind = ColumnKind::kConstant};
  ColumnSpec random{.name = "r", .kind = ColumnKind::kRandom, .domain_size = 10};
  ColumnSpec derived{.name = "d", .kind = ColumnKind::kDerived, .domain_size = 40};
  derived.parents = {2};
  s.columns = {key, constant, random, derived};
  return s;
}

TEST(GeneratorTest, ShapeMatchesSpec) {
  RawTable t = GenerateRawTable(SimpleSpec());
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.num_cols(), 4);
  EXPECT_EQ(t.header[0], "k");
}

TEST(GeneratorTest, Deterministic) {
  RawTable a = GenerateRawTable(SimpleSpec());
  RawTable b = GenerateRawTable(SimpleSpec());
  EXPECT_EQ(a.rows, b.rows);
  DatasetSpec other = SimpleSpec();
  other.seed = 8;
  RawTable c = GenerateRawTable(other);
  EXPECT_NE(a.rows, c.rows);
}

TEST(GeneratorTest, KeyColumnIsUnique) {
  RawTable t = GenerateRawTable(SimpleSpec());
  std::set<std::string> seen;
  for (const auto& row : t.rows) EXPECT_TRUE(seen.insert(row[0]).second);
}

TEST(GeneratorTest, ConstantColumnIsConstant) {
  RawTable t = GenerateRawTable(SimpleSpec());
  for (const auto& row : t.rows) EXPECT_EQ(row[1], t.rows[0][1]);
}

TEST(GeneratorTest, DerivedColumnRespectsPlantedFd) {
  RawTable t = GenerateRawTable(SimpleSpec());
  EncodedRelation e = EncodeRelation(t);
  EXPECT_TRUE(e.relation.satisfies(AttributeSet{2}, 3));
}

TEST(GeneratorTest, RandomColumnStaysInDomain) {
  RawTable t = GenerateRawTable(SimpleSpec());
  std::set<std::string> distinct;
  for (const auto& row : t.rows) distinct.insert(row[2]);
  EXPECT_LE(distinct.size(), 10u);
  EXPECT_GE(distinct.size(), 5u);  // 500 draws over 10 values hit most
}

TEST(GeneratorTest, NullRateProducesNulls) {
  DatasetSpec s = SimpleSpec();
  s.columns[2].null_rate = 0.3;
  RawTable t = GenerateRawTable(s);
  int nulls = 0;
  for (const auto& row : t.rows) {
    if (row[2].empty()) ++nulls;
  }
  EXPECT_GT(nulls, 500 * 0.15);
  EXPECT_LT(nulls, 500 * 0.45);
}

TEST(GeneratorTest, DuplicateRowsCopyNonKeyColumns) {
  DatasetSpec s = SimpleSpec();
  s.duplicate_row_rate = 0.5;
  RawTable t = GenerateRawTable(s);
  int dup_pairs = 0;
  for (int i = 1; i < t.num_rows(); ++i) {
    if (t.rows[i][2] == t.rows[i - 1][2] && t.rows[i][3] == t.rows[i - 1][3]) {
      ++dup_pairs;
    }
  }
  EXPECT_GT(dup_pairs, 100);
}

TEST(GeneratorTest, SkewConcentratesMass) {
  DatasetSpec s;
  s.rows = 2000;
  s.seed = 3;
  ColumnSpec skewed{.name = "z", .kind = ColumnKind::kRandom, .domain_size = 100};
  skewed.skew = 2.0;
  s.columns = {skewed};
  RawTable t = GenerateRawTable(s);
  int top = 0;
  for (const auto& row : t.rows) {
    if (row[0] == "v0") ++top;
  }
  EXPECT_GT(top, 2000 / 100);  // far above uniform share
}

TEST(GeneratorTest, SelfDependentDerivedThrows) {
  DatasetSpec s;
  s.rows = 10;
  ColumnSpec bad{.name = "x", .kind = ColumnKind::kDerived, .domain_size = 5};
  bad.parents = {0};
  s.columns = {bad};
  EXPECT_THROW(GenerateRawTable(s), std::invalid_argument);
}

}  // namespace
}  // namespace dhyfd
