// Trace-context propagation through the concurrency layers: a trace id set
// at submission must follow the work onto whichever worker thread runs it,
// and the service layers must surface each job's queue-wait / run /
// cancellation phases as spans under that id. Runs under ThreadSanitizer in
// CI, so it doubles as the race check for the lock-free tracer buffers.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "datagen/benchmark_data.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "relation/csv.h"
#include "service/service.h"
#include "util/thread_pool.h"

namespace dhyfd {
namespace {

std::vector<TraceEvent> EventsForTraceId(std::uint64_t trace_id) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : Tracer::Global().drain()) {
    if (e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

bool HasSpan(const std::vector<TraceEvent>& events, const std::string& name,
             char phase = 'X') {
  for (const TraceEvent& e : events) {
    if (e.phase == phase && e.name != nullptr && name == e.name) return true;
  }
  return false;
}

TEST(ThreadPoolPropagationTest, SubmitCarriesCurrentTraceId) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> seen{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  {
    TraceIdScope scope(1234);
    pool.submit([&] {
      seen = CurrentTraceId();
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_EQ(seen.load(), 1234u);
}

TEST(ThreadPoolPropagationTest, NoContextMeansNoTraceId) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> seen{99};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ASSERT_EQ(CurrentTraceId(), 0u);
  pool.submit([&] {
    seen = CurrentTraceId();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(seen.load(), 0u);
}

TEST(ThreadPoolPropagationTest, WorkerContextDoesNotLeakToNextTask) {
  // One worker runs a traced task, then an untraced one: the TraceIdScope
  // must be unwound between tasks.
  ThreadPool pool(1);
  std::atomic<std::uint64_t> first{0};
  std::atomic<std::uint64_t> second{99};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  auto mark_done = [&] {
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    cv.notify_all();
  };
  {
    TraceIdScope scope(55);
    pool.submit([&] {
      first = CurrentTraceId();
      mark_done();
    });
  }
  pool.submit([&] {
    second = CurrentTraceId();
    mark_done();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 2; });
  EXPECT_EQ(first.load(), 55u);
  EXPECT_EQ(second.load(), 0u);
}

TEST(SchedulerPropagationTest, NoTracingMeansZeroTraceId) {
  ASSERT_FALSE(Tracer::Global().enabled());
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", GenerateBenchmark("abalone", 200));
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});
  JobHandlePtr h = scheduler.submit({.dataset = "t"});
  h->wait();
  EXPECT_EQ(h->state(), JobState::kDone);
  EXPECT_EQ(h->trace_id(), 0u);
}

TEST(SchedulerPropagationTest, JobTreeHasQueueWaitRunAndCounterSeries) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", GenerateBenchmark("abalone", 300));
  Tracer& tracer = Tracer::Global();
  tracer.start();
  JobHandlePtr h;
  {
    JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});
    ProfileJob job;
    job.dataset = "t";
    job.options.algorithm = "dhyfd";
    h = scheduler.submit(job);
    h->wait();
  }
  tracer.stop();
  ASSERT_EQ(h->state(), JobState::kDone);
  ASSERT_NE(h->trace_id(), 0u);

  std::vector<TraceEvent> events = EventsForTraceId(h->trace_id());
  EXPECT_TRUE(HasSpan(events, "svc.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "svc.job.run"));
  EXPECT_TRUE(HasSpan(events, "profile.discover"));
  EXPECT_TRUE(HasSpan(events, "discover.sampling"));
  EXPECT_TRUE(HasSpan(events, "discover.validation"));
  // The per-job TelemetrySink tags algorithm counter series with the job's
  // trace id; a dhyfd run exercises sampling, validation, and induction.
  std::set<std::string> counter_series;
  for (const TraceEvent& e : events) {
    if (e.phase == 'C' && e.name != nullptr) counter_series.insert(e.name);
  }
  EXPECT_GE(counter_series.size(), 5u) << "got " << counter_series.size();
  // The same counters also landed in the shared registry.
  EXPECT_GT(metrics.counter("discover.validator.calls").value(), 0);
}

TEST(SchedulerPropagationTest, CancelledQueuedJobEmitsMarker) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", GenerateBenchmark("abalone", 200));
  Tracer& tracer = Tracer::Global();
  tracer.start();

  std::mutex mu;
  std::condition_variable cv;
  bool blocker_started = false;
  bool release_blocker = false;

  JobHandlePtr victim;
  {
    JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
    // Job 1 occupies the only worker until released, guaranteeing the
    // victim is cancelled while still queued.
    ProfileJob blocker;
    blocker.dataset = "t";
    blocker.options.stage_hook = [&](ProfileStage, double) {
      std::unique_lock<std::mutex> lock(mu);
      blocker_started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release_blocker; });
    };
    JobHandlePtr b = scheduler.submit(blocker);
    victim = scheduler.submit({.dataset = "t"});
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return blocker_started; });
    }
    victim->cancel();
    {
      std::lock_guard<std::mutex> lock(mu);
      release_blocker = true;
      cv.notify_all();
    }
    scheduler.wait_all();
    EXPECT_EQ(b->state(), JobState::kDone);
  }
  tracer.stop();
  EXPECT_EQ(victim->state(), JobState::kCancelled);
  ASSERT_NE(victim->trace_id(), 0u);
  std::vector<TraceEvent> events = EventsForTraceId(victim->trace_id());
  EXPECT_TRUE(HasSpan(events, "svc.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "svc.job.cancelled", 'i'));
  EXPECT_FALSE(HasSpan(events, "svc.job.run"));
}

TEST(LiveStorePropagationTest, BatchTreeHasQueueWaitAndBatchSpans) {
  RawTable table;
  table.header = {"a", "b", "c"};
  for (int i = 0; i < 40; ++i) {
    table.rows.push_back({std::to_string(i), std::to_string(i % 4),
                          std::to_string((i % 4) * 3)});
  }
  MetricsRegistry metrics;
  LiveStore store(&metrics, 2);
  store.create("t", table);  // initial discovery runs untraced

  Tracer& tracer = Tracer::Global();
  tracer.start();
  UpdateBatch batch;
  batch.inserts.push_back({"100", "1", "7"});
  batch.deletes.push_back(0);
  UpdateJobHandlePtr h = store.submit({"t", batch});
  h->wait();
  tracer.stop();

  EXPECT_EQ(h->state(), UpdateJobState::kDone);
  ASSERT_NE(h->trace_id(), 0u);
  std::vector<TraceEvent> events = EventsForTraceId(h->trace_id());
  EXPECT_TRUE(HasSpan(events, "incr.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "incr.batch"));
  // Batch counters flow through the per-batch sink into the registry.
  EXPECT_GT(metrics.counter("incr.pairs_compared").value(), 0);
}

TEST(WirePropagationTest, ClientTraceIdSpansEveryServerLayer) {
  // The full causal chain over the wire: a TraceIdScope on the client
  // thread stamps the trace envelope, and every server-side layer — poll
  // loop, ops pool, job scheduler, live store — must tag its spans with
  // that id, so one merged Chrome trace shows the request end to end.
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});
  LiveStore live(&metrics, 2);
  net::ProfilingServer server(&scheduler, &live, &datasets, &metrics, {});
  server.start();

  Tracer& tracer = Tracer::Global();
  tracer.start();
  constexpr std::uint64_t kTraceId = 424242;
  {
    net::BlockingClient client("127.0.0.1", server.port(), "traced", 30);
    TraceIdScope scope(kTraceId);
    client.register_dataset(
        "aba", WriteCsvString(GenerateBenchmark("abalone", 120)),
        /*live=*/true);
    net::SubmitDiscoveryMsg submit;
    submit.dataset = "aba";
    client.submit_discovery(submit);
    client.query_cover("aba", 3);
    net::ApplyUpdateMsg update;
    update.dataset = "aba";
    RawTable extra = GenerateBenchmark("abalone", 125);
    for (int i = 120; i < 125; ++i) update.inserts.push_back(extra.rows[i]);
    client.apply_update(update);
    client.goodbye();
  }
  server.shutdown();
  live.shutdown();
  scheduler.shutdown();
  tracer.stop();

  std::vector<TraceEvent> events = EventsForTraceId(kTraceId);
  // Client side of the wire.
  EXPECT_TRUE(HasSpan(events, "net.client.call"));
  // Server poll loop: per-request dispatch plus the whole-RPC envelope.
  EXPECT_TRUE(HasSpan(events, "net.dispatch"));
  EXPECT_TRUE(HasSpan(events, "net.rpc"));
  // Ops pool (register_dataset / query_cover).
  EXPECT_TRUE(HasSpan(events, "net.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "net.ops.run"));
  // Job scheduler strand (submit_discovery).
  EXPECT_TRUE(HasSpan(events, "svc.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "svc.job.run"));
  EXPECT_TRUE(HasSpan(events, "profile.discover"));
  // Live store strand (apply_update).
  EXPECT_TRUE(HasSpan(events, "incr.queue_wait"));
  EXPECT_TRUE(HasSpan(events, "incr.batch"));
}

TEST(WirePropagationTest, ClientMintsTraceIdWhenNoScopeIsActive) {
  // Without an ambient TraceIdScope the client mints a fresh id per call
  // and propagates that — the server side still joins the same tree.
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  LiveStore live(&metrics, 1);
  net::ProfilingServer server(&scheduler, &live, &datasets, &metrics, {});
  server.start();

  Tracer& tracer = Tracer::Global();
  tracer.start();
  {
    net::BlockingClient client("127.0.0.1", server.port(), "untraced", 30);
    ASSERT_EQ(CurrentTraceId(), 0u);
    client.register_dataset(
        "aba", WriteCsvString(GenerateBenchmark("abalone", 60)),
        /*live=*/true);
    client.query_cover("aba", 2);
    client.goodbye();
  }
  server.shutdown();
  live.shutdown();
  scheduler.shutdown();
  tracer.stop();

  std::vector<TraceEvent> all = Tracer::Global().drain();
  std::uint64_t client_trace = 0;
  for (const TraceEvent& e : all) {
    if (e.phase != 'X' || e.name == nullptr) continue;
    if (std::string("net.client.call") == e.name) client_trace = e.trace_id;
  }
  ASSERT_NE(client_trace, 0u);
  std::vector<TraceEvent> events;
  for (const TraceEvent& e : all) {
    if (e.trace_id == client_trace) events.push_back(e);
  }
  EXPECT_TRUE(HasSpan(events, "net.dispatch"));
  EXPECT_TRUE(HasSpan(events, "net.rpc"));
}

TEST(LiveStorePropagationTest, NoTracingMeansZeroTraceId) {
  ASSERT_FALSE(Tracer::Global().enabled());
  RawTable table;
  table.header = {"a", "b"};
  for (int i = 0; i < 10; ++i) {
    table.rows.push_back({std::to_string(i), std::to_string(i % 2)});
  }
  MetricsRegistry metrics;
  LiveStore store(&metrics, 1);
  store.create("t", table);
  UpdateBatch batch;
  batch.inserts.push_back({"99", "1"});
  UpdateJobHandlePtr h = store.submit({"t", batch});
  h->wait();
  EXPECT_EQ(h->state(), UpdateJobState::kDone);
  EXPECT_EQ(h->trace_id(), 0u);
}

}  // namespace
}  // namespace dhyfd
