#include <gtest/gtest.h>

#include <set>

#include "util/memory.h"
#include "util/random.h"
#include "util/timer.h"

namespace dhyfd {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Random a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(RandomTest, ZeroSeedIsValid) {
  Random r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 45u);  // not stuck
}

TEST(RandomTest, NextBelowStaysInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    int64_t v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextBoolRespectsProbability) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25);
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(RandomTest, ZipfSkewsTowardSmallRanks) {
  Random r(17);
  int low = 0, n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.next_zipf(100, 1.0) < 10) ++low;
  }
  // Uniform would put ~10% below rank 10; skew must concentrate far more.
  EXPECT_GT(low, n / 4);
}

TEST(RandomTest, ZipfStaysInRange) {
  Random r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_zipf(7, 2.0), 7u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  double s = t.seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_EQ(t.millis() >= s * 1e3 * 0.5, true);
  t.reset();
  EXPECT_LT(t.seconds(), s + 1.0);
}

TEST(MemoryTest, RssReadable) {
  // On Linux these must return something plausible (> 1 MB, < 1 TB).
  size_t rss = CurrentRssBytes();
  size_t peak = PeakRssBytes();
  EXPECT_GT(rss, 1u << 20);
  EXPECT_LT(rss, size_t{1} << 40);
  EXPECT_GE(peak, rss / 2);  // peak is at least on the order of current
}

TEST(MemoryTest, WatermarkTracksGrowth) {
  MemoryWatermark mark;
  // Allocate ~32 MB and touch it so RSS actually grows.
  std::vector<char> big(32u << 20, 1);
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 2;
  mark.sample();
  EXPECT_GT(mark.delta_peak_mb(), 8.0);
}

}  // namespace
}  // namespace dhyfd
