#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

TEST(StrippedPartitionTest, SingleAttribute) {
  Relation r = FromValues({{0}, {0}, {1}, {2}, {2}, {2}});
  StrippedPartition p = BuildAttributePartition(r, 0);
  p.normalize();
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(testutil::ClusterRows(p, 0), (std::vector<RowId>{0, 1}));
  EXPECT_EQ(testutil::ClusterRows(p, 1), (std::vector<RowId>{3, 4, 5}));
  EXPECT_EQ(p.support(), 5);
  EXPECT_EQ(p.error(), 3);
}

TEST(StrippedPartitionTest, SingletonsAreStripped) {
  Relation r = FromValues({{0}, {1}, {2}});
  StrippedPartition p = BuildAttributePartition(r, 0);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.error(), 0);  // key
}

TEST(StrippedPartitionTest, EmptyLhsPartition) {
  Relation r = FromValues({{0}, {1}, {2}});
  StrippedPartition p = BuildPartition(r, AttributeSet());
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.support(), 3);
}

TEST(StrippedPartitionTest, EmptyLhsOnTinyRelation) {
  Relation r1 = FromValues({{0}});
  EXPECT_TRUE(BuildPartition(r1, AttributeSet()).empty());
  Relation r0 = FromValues({});
  EXPECT_TRUE(BuildPartition(r0, AttributeSet()).empty());
}

TEST(StrippedPartitionTest, ErrorOnEmptyRelation) {
  Relation r = FromValues({});
  StrippedPartition p = BuildPartition(r, AttributeSet());
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.error(), 0);
  EXPECT_EQ(p.support(), 0);
  EXPECT_EQ(StrippedPartition::whole(0).error(), 0);
}

TEST(StrippedPartitionTest, ErrorOnSingleWholeCluster) {
  // A constant column: one cluster holding every row, e(X) = n - 1.
  Relation r = FromValues({{7}, {7}, {7}, {7}});
  StrippedPartition p = BuildAttributePartition(r, 0);
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.support(), 4);
  EXPECT_EQ(p.error(), 3);
  EXPECT_EQ(StrippedPartition::whole(4).error(), 3);
}

TEST(StrippedPartitionTest, ErrorOnAllDistinctColumn) {
  // A key column strips to nothing: ||pi|| = |pi| = 0, so e(X) = 0.
  Relation r = FromValues({{0, 5}, {1, 5}, {2, 5}, {3, 5}});
  StrippedPartition p = BuildAttributePartition(r, 0);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.error(), 0);
  EXPECT_EQ(p.support(), 0);
}

TEST(StrippedPartitionTest, MultiAttributePartition) {
  Relation r = FromValues({{0, 0}, {0, 0}, {0, 1}, {1, 0}, {1, 0}});
  StrippedPartition p = BuildPartition(r, AttributeSet{0, 1});
  p.normalize();
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(testutil::ClusterRows(p, 0), (std::vector<RowId>{0, 1}));
  EXPECT_EQ(testutil::ClusterRows(p, 1), (std::vector<RowId>{3, 4}));
}

TEST(PartitionRefinerTest, RefineMatchesDirectBuild) {
  Relation r = RandomRelation(7, 200, 4, 5);
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  StrippedPartition refined = refiner.refine(p0, 2);
  StrippedPartition direct = BuildPartition(r, AttributeSet{0, 2});
  refined.normalize();
  direct.normalize();
  EXPECT_EQ(refined.to_string(), direct.to_string());
}

TEST(PartitionRefinerTest, RefineAllOrderIndependent) {
  Relation r = RandomRelation(11, 150, 5, 4);
  PartitionRefiner refiner(r);
  StrippedPartition a =
      refiner.refine_all(BuildAttributePartition(r, 0), AttributeSet{1, 3});
  StrippedPartition b =
      refiner.refine(refiner.refine(BuildAttributePartition(r, 0), 3), 1);
  a.normalize();
  b.normalize();
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(PartitionRefinerTest, RefineClusterAppendsOnlyNonSingletons) {
  Relation r = FromValues({{0, 0}, {0, 1}, {0, 0}, {0, 2}});
  PartitionRefiner refiner(r);
  StrippedPartition out;
  const std::vector<RowId> cluster = {0, 1, 2, 3};
  refiner.refine_cluster(ClusterView(cluster.data(), cluster.size()), 1, out);
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(testutil::ClusterRows(out, 0), (std::vector<RowId>{0, 2}));
}

TEST(PartitionRefinerTest, ScratchIsReusableAcrossCalls) {
  Relation r = RandomRelation(13, 100, 3, 6);
  PartitionRefiner refiner(r);
  for (int iter = 0; iter < 3; ++iter) {
    StrippedPartition p = refiner.refine(BuildAttributePartition(r, 0), 1);
    StrippedPartition direct = BuildPartition(r, AttributeSet{0, 1});
    EXPECT_EQ(p.support(), direct.support());
    EXPECT_EQ(p.size(), direct.size());
  }
}

TEST(IntersectPartitionsTest, MatchesRefinement) {
  Relation r = RandomRelation(17, 300, 4, 4);
  StrippedPartition pa = BuildPartition(r, AttributeSet{0, 1});
  StrippedPartition pb = BuildPartition(r, AttributeSet{0, 2});
  StrippedPartition inter = IntersectPartitions(pa, pb, r.num_rows());
  StrippedPartition direct = BuildPartition(r, AttributeSet{0, 1, 2});
  inter.normalize();
  direct.normalize();
  EXPECT_EQ(inter.to_string(), direct.to_string());
}

TEST(IntersectPartitionsTest, DisjointGivesEmpty) {
  Relation r = FromValues({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  StrippedPartition pa = BuildAttributePartition(r, 0);
  StrippedPartition pb = BuildAttributePartition(r, 1);
  StrippedPartition inter = IntersectPartitions(pa, pb, r.num_rows());
  EXPECT_TRUE(inter.empty());
}

TEST(PartitionImpliesFdTest, DetectsValidity) {
  Relation r = FromValues({{0, 5, 1}, {0, 5, 2}, {1, 6, 1}});
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  EXPECT_TRUE(PartitionImpliesFd(r, p0, 1));   // 0 -> 1
  EXPECT_FALSE(PartitionImpliesFd(r, p0, 2));  // 0 !-> 2
}

TEST(PartitionTest, ErrorIsMonotoneUnderRefinement) {
  Relation r = RandomRelation(23, 400, 5, 3);
  PartitionRefiner refiner(r);
  StrippedPartition p = BuildAttributePartition(r, 0);
  int64_t prev = p.error();
  for (AttrId a = 1; a < 5; ++a) {
    p = refiner.refine(p, a);
    EXPECT_LE(p.error(), prev);
    prev = p.error();
  }
}

TEST(PartitionTest, MemoryBytesGrowsWithClusters) {
  Relation r = RandomRelation(29, 500, 2, 3);
  StrippedPartition p = BuildAttributePartition(r, 0);
  EXPECT_GT(p.memory_bytes(), sizeof(StrippedPartition));
}

// Property sweep: refinement equals ground-truth grouping on many shapes.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, BuildPartitionMatchesPairwiseDefinition) {
  int seed = GetParam();
  Random rng(seed);
  int rows = 20 + static_cast<int>(rng.next_below(80));
  int cols = 2 + static_cast<int>(rng.next_below(4));
  int domain = 2 + static_cast<int>(rng.next_below(5));
  Relation r = RandomRelation(seed * 31 + 1, rows, cols, domain);
  AttributeSet x;
  for (int c = 0; c < cols; ++c) {
    if (rng.next_bool(0.5)) x.set(c);
  }
  StrippedPartition p = BuildPartition(r, x);
  // Pairwise check: two rows are in the same cluster iff they agree on x.
  std::vector<int> cluster_of(rows, -1);
  for (size_t ci = 0; ci < static_cast<size_t>(p.size()); ++ci) {
    for (RowId row : p.cluster(ci)) cluster_of[row] = static_cast<int>(ci);
  }
  // The cached O(1) support/size must equal the per-cluster sums.
  int64_t support = 0;
  int64_t classes = 0;
  for (ClusterView c : p.clusters()) {
    support += static_cast<int64_t>(c.size());
    ++classes;
  }
  EXPECT_EQ(support, p.support());
  EXPECT_EQ(classes, p.size());
  for (RowId i = 0; i < rows; ++i) {
    for (RowId j = i + 1; j < rows; ++j) {
      bool same = cluster_of[i] >= 0 && cluster_of[i] == cluster_of[j];
      EXPECT_EQ(same, r.agree_on(i, j, x))
          << "rows " << i << "," << j << " x=" << x.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace dhyfd
