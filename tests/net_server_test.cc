#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/benchmark_data.h"
#include "net/client.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "relation/csv.h"

namespace dhyfd::net {
namespace {

std::string DemoCsv(int rows = 120) {
  return WriteCsvString(GenerateBenchmark("abalone", rows));
}

/// One fully-wired service stack plus a started server.
struct Stack {
  explicit Stack(ServerOptions options = {}, SchedulerOptions sched = {}) {
    sched.num_threads = sched.num_threads == 0 ? 2 : sched.num_threads;
    scheduler = std::make_unique<JobScheduler>(&datasets, &metrics, sched);
    live = std::make_unique<LiveStore>(&metrics, 2);
    server = std::make_unique<ProfilingServer>(scheduler.get(), live.get(),
                                               &datasets, &metrics, options);
    server->start();
  }
  ~Stack() {
    server->shutdown();
    live->shutdown();
    scheduler->shutdown();
  }

  BlockingClient connect(const std::string& name = "test-client") {
    return BlockingClient("127.0.0.1", server->port(), name,
                          /*timeout_seconds=*/30);
  }

  MetricsRegistry metrics;
  DatasetRegistry datasets{&metrics};
  std::unique_ptr<JobScheduler> scheduler;
  std::unique_ptr<LiveStore> live;
  std::unique_ptr<ProfilingServer> server;
};

/// Reads one frame from a raw socket (tests that bypass BlockingClient).
bool ReadRawFrame(Socket& s, Frame* out) {
  std::uint8_t len_bytes[kLengthPrefixBytes];
  if (!s.read_exact(len_bytes, sizeof len_bytes)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  }
  std::vector<std::uint8_t> body(len);
  if (!s.read_exact(body.data(), body.size())) return false;
  out->type = static_cast<MsgType>(body[0]);
  out->request_id = 0;
  for (int i = 0; i < 8; ++i) {
    out->request_id |= static_cast<std::uint64_t>(body[1 + i]) << (8 * i);
  }
  out->payload.assign(body.begin() + kFrameHeaderBytes, body.end());
  return true;
}

TEST(NetServerTest, HelloHandshakeAndPing) {
  Stack stack;
  BlockingClient client = stack.connect();
  EXPECT_EQ(client.server_limits().protocol_version, kProtocolVersion);
  EXPECT_GT(client.server_limits().max_inflight, 0u);
  client.ping();
  EXPECT_EQ(stack.server->connections(), 1);
  client.goodbye();
}

TEST(NetServerTest, UnsupportedVersionGetsErrorThenClose) {
  Stack stack;
  Socket s = ConnectTcp("127.0.0.1", stack.server->port());
  s.set_recv_timeout(30);
  HelloMsg hello;
  hello.protocol_version = 99;
  s.write_all(EncodeMsgFrame(MsgType::kHello, 1, hello));
  Frame f;
  ASSERT_TRUE(ReadRawFrame(s, &f));
  ASSERT_EQ(f.type, MsgType::kError);
  WireReader r(f.payload);
  EXPECT_EQ(ErrorMsg::decode(r).code, ErrCode::kUnsupportedVersion);
  EXPECT_FALSE(ReadRawFrame(s, &f));  // server closed after the reply
}

TEST(NetServerTest, FirstFrameMustBeHello) {
  Stack stack;
  Socket s = ConnectTcp("127.0.0.1", stack.server->port());
  s.set_recv_timeout(30);
  s.write_all(EncodeEmptyFrame(MsgType::kPing, 1));
  Frame f;
  EXPECT_FALSE(ReadRawFrame(s, &f));  // dropped without a reply
  EXPECT_GE(stack.metrics.counter("net.protocol_errors").value(), 1);
}

TEST(NetServerTest, GarbageBytesDropConnectionCleanly) {
  Stack stack;
  BlockingClient healthy = stack.connect("healthy");

  BlockingClient garbage = stack.connect("garbage");
  const char junk[] = "\xff\xff\xff\xff totally not a frame \x00\x01\x02";
  garbage.send_bytes(junk, sizeof junk);
  // The server drops us: either a clean EOF (read_frame returns false) or a
  // transport error, but never a reply and never a hung connection.
  bool dropped = false;
  try {
    Frame f;
    dropped = !garbage.read_frame(&f);
  } catch (const std::exception&) {
    dropped = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_GE(stack.metrics.counter("net.protocol_errors").value(), 1);

  // The healthy connection is completely unaffected.
  healthy.ping();
}

TEST(NetServerTest, TruncatedFrameThenCloseIsHarmless) {
  Stack stack;
  {
    Socket s = ConnectTcp("127.0.0.1", stack.server->port());
    HelloMsg hello;
    std::vector<std::uint8_t> frame = EncodeMsgFrame(MsgType::kHello, 1, hello);
    s.write_all(frame.data(), frame.size() / 2);  // half a frame, then RST/FIN
  }
  // Server must survive; prove it by doing real work afterwards.
  BlockingClient client = stack.connect();
  client.ping();
}

TEST(NetServerTest, RegisterQueryAndDiscoveryEndToEnd) {
  Stack stack;
  BlockingClient client = stack.connect();

  RegisterOkMsg reg = client.register_dataset("aba", DemoCsv(), /*live=*/true);
  EXPECT_EQ(reg.rows, 120u);
  EXPECT_GT(reg.cols, 0u);

  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  submit.top_k = 5;
  DiscoveryResultMsg result = client.submit_discovery(submit);
  EXPECT_EQ(result.state, "done");
  EXPECT_GT(result.cover_size, 0u);
  EXPECT_FALSE(result.top.empty());
  EXPECT_GE(result.top[0].redundancy, result.top.back().redundancy);

  CoverResultMsg cover = client.query_cover("aba", 3);
  EXPECT_GT(cover.total, 0u);
  EXPECT_LE(cover.top.size(), 3u);
}

TEST(NetServerTest, SubmitQueryEndToEnd) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  SubmitQueryMsg submit;
  submit.dataset = "aba";
  submit.top_k = 5;
  QueryResultMsg result = client.submit_query(submit);
  EXPECT_EQ(result.state, "done");
  EXPECT_GT(result.validations, 0u);
  EXPECT_EQ(result.total, result.fds.size());
  ASSERT_LE(result.fds.size(), 5u);
  ASSERT_FALSE(result.fds.empty());
  for (std::size_t i = 1; i < result.fds.size(); ++i) {
    EXPECT_GE(result.fds[i - 1].redundancy, result.fds[i].redundancy);
  }

  // Approximate + arity-bounded also answers cleanly.
  submit.top_k = 0;
  submit.epsilon = 0.1;
  submit.max_lhs = 2;
  QueryResultMsg approx = client.submit_query(submit);
  EXPECT_EQ(approx.state, "done");
  EXPECT_EQ(approx.total, approx.fds.size());
}

TEST(NetServerTest, HostileQuerySpecGetsBadRequestNotDisconnect) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  SubmitQueryMsg submit;
  submit.dataset = "aba";
  submit.epsilon = -7.5;  // well-framed, semantically hostile
  try {
    client.submit_query(submit);
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kBadRequest);
  }

  submit.epsilon = 0;
  submit.max_lhs = 0xffffffffu;  // absurd arity bound
  try {
    client.submit_query(submit);
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kBadRequest);
  }

  // Scope wider than the schema is caught when the job resolves the
  // dataset; still a clean bad-request, not a dropped connection.
  submit.max_lhs = 0;
  submit.include_columns = {0, 200};
  try {
    client.submit_query(submit);
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kBadRequest);
  }

  // The connection survived all three rejections.
  client.ping();
  SubmitQueryMsg good;
  good.dataset = "aba";
  good.top_k = 3;
  EXPECT_EQ(client.submit_query(good).state, "done");
}

TEST(NetServerTest, V1ClientIsRejectedCleanlyOnSubmitQuery) {
  Stack stack;
  Socket s = ConnectTcp("127.0.0.1", stack.server->port());
  s.set_recv_timeout(30);
  HelloMsg hello;
  hello.protocol_version = 1;  // an old client
  hello.client_name = "legacy";
  s.write_all(EncodeMsgFrame(MsgType::kHello, 1, hello));
  Frame f;
  ASSERT_TRUE(ReadRawFrame(s, &f));
  ASSERT_EQ(f.type, MsgType::kHelloOk);
  {
    WireReader r(f.payload);
    EXPECT_EQ(HelloOkMsg::decode(r).protocol_version, 1u);
  }

  // v2-only request on a v1 connection: per-request error, no disconnect.
  SubmitQueryMsg submit;
  submit.dataset = "whatever";
  s.write_all(EncodeMsgFrame(MsgType::kSubmitQuery, 2, submit));
  ASSERT_TRUE(ReadRawFrame(s, &f));
  ASSERT_EQ(f.type, MsgType::kError);
  {
    WireReader r(f.payload);
    EXPECT_EQ(ErrorMsg::decode(r).code, ErrCode::kUnsupportedVersion);
  }

  // The v1 message set still works on the same connection.
  s.write_all(EncodeEmptyFrame(MsgType::kPing, 3));
  ASSERT_TRUE(ReadRawFrame(s, &f));
  EXPECT_EQ(f.type, MsgType::kPong);
}

TEST(NetServerTest, UnknownDatasetErrors) {
  Stack stack;
  BlockingClient client = stack.connect();
  SubmitDiscoveryMsg submit;
  submit.dataset = "missing";
  try {
    client.submit_discovery(submit);
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kInternal);  // job ran and failed
  }
  try {
    client.query_cover("missing");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kUnknownDataset);
  }
}

TEST(NetServerTest, ConcurrentClientsAllGetAnswers) {
  Stack stack;
  {
    BlockingClient setup = stack.connect("setup");
    setup.register_dataset("aba", DemoCsv(), /*live=*/false);
  }
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&stack, &ok, i] {
      BlockingClient c = stack.connect("worker-" + std::to_string(i));
      SubmitDiscoveryMsg submit;
      submit.dataset = "aba";
      submit.top_k = 3;
      DiscoveryResultMsg result = c.submit_discovery(submit);
      if (result.state == "done" && result.cover_size > 0) ok.fetch_add(1);
      c.goodbye();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

TEST(NetServerTest, DeadlineMapsToJobTimeLimit) {
  Stack stack;
  BlockingClient client = stack.connect();
  // Big enough that full discovery cannot finish in 1 ms.
  client.register_dataset("big", WriteCsvString(GenerateBenchmark("abalone", 4000)),
                          /*live=*/false);
  SubmitDiscoveryMsg submit;
  submit.dataset = "big";
  submit.deadline_ms = 1;
  DiscoveryResultMsg result = client.submit_discovery(submit);
  EXPECT_EQ(result.state, "deadline_expired") << "1 ms deadline should expire";

  submit.deadline_ms = 0;  // control: no deadline completes normally
  result = client.submit_discovery(submit);
  EXPECT_EQ(result.state, "done");
}

TEST(NetServerTest, QuotaExceededAfterBurst) {
  ServerOptions options;
  options.quota_rate = 0.001;  // effectively no refill during the test
  options.quota_burst = 3;
  Stack stack(options);
  BlockingClient client = stack.connect();
  for (int i = 0; i < 3; ++i) {
    // Unknown dataset answers an error, but it consumed a token all the same.
    EXPECT_THROW(client.query_cover("nope_is_fine_quota_wise", 0), RpcError);
  }
  // 4th real request: bucket empty.
  try {
    client.query_cover("x");
    FAIL() << "expected quota rejection";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kQuotaExceeded);
  }
  // Pings are quota-exempt: the connection itself still works.
  client.ping();
  EXPECT_GE(stack.metrics.counter("net.quota_rejects").value(), 1);
}

TEST(NetServerTest, InflightWindowRejectsPipelinedExcess) {
  ServerOptions options;
  options.max_inflight = 1;
  Stack stack(options);
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  // Pipeline two discovery requests without reading; the second must bounce
  // off the in-flight window. Both frames go out in ONE write so the server
  // dispatches them back-to-back from a single read — sent separately, the
  // first job can finish (and release the window) before the second arrives.
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  WireWriter w1;
  submit.encode(w1);
  std::vector<std::uint8_t> pipelined =
      EncodeFrame(MsgType::kSubmitDiscovery, 101, w1.bytes());
  std::vector<std::uint8_t> second =
      EncodeFrame(MsgType::kSubmitDiscovery, 102, w1.bytes());
  pipelined.insert(pipelined.end(), second.begin(), second.end());
  client.send_bytes(pipelined.data(), pipelined.size());

  bool saw_result = false, saw_reject = false;
  for (int i = 0; i < 2; ++i) {
    Frame f;
    ASSERT_TRUE(client.read_frame(&f));
    if (f.type == MsgType::kDiscoveryResult) {
      EXPECT_EQ(f.request_id, 101u);
      saw_result = true;
    } else {
      ASSERT_EQ(f.type, MsgType::kError);
      EXPECT_EQ(f.request_id, 102u);
      WireReader r(f.payload);
      EXPECT_EQ(ErrorMsg::decode(r).code, ErrCode::kTooManyInFlight);
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_result);
  EXPECT_TRUE(saw_reject);
  EXPECT_GE(stack.metrics.counter("net.inflight_rejects").value(), 1);
}

TEST(NetServerTest, SchedulerBackstopAnswersServerBusy) {
  SchedulerOptions sched;
  sched.num_threads = 1;
  sched.max_pending = 1;
  Stack stack({}, sched);
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  // Deterministically occupy the single worker: a directly-submitted job
  // whose stage hook blocks until we let go.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  bool entered = false;
  ProfileJob blocker;
  blocker.dataset = "aba";
  blocker.options.stage_hook = [&](ProfileStage, double) {
    std::unique_lock<std::mutex> lock(gate_mu);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  JobHandlePtr running = stack.scheduler->submit(blocker);
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return entered; });
  }
  // Fill the single pending slot.
  ProfileJob filler;
  filler.dataset = "aba";
  JobHandlePtr queued = stack.scheduler->submit(filler);
  ASSERT_FALSE(queued->rejected());

  // The client's job has nowhere to go: admission backstop says busy.
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  try {
    client.submit_discovery(submit);
    FAIL() << "expected server-busy rejection";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kServerBusy);
  }
  EXPECT_GE(stack.metrics.counter("net.busy_rejects").value(), 1);
  EXPECT_GE(stack.metrics.counter("jobs.rejected").value(), 1);

  {
    std::unique_lock<std::mutex> lock(gate_mu);
    release = true;
    gate_cv.notify_all();
  }
  running->wait();
  queued->wait();
}

TEST(NetServerTest, SubscriberReceivesCoverDeltas) {
  Stack stack;
  BlockingClient writer = stack.connect("writer");
  writer.register_dataset("aba", DemoCsv(), /*live=*/true);

  BlockingClient sub = stack.connect("subscriber");
  std::uint32_t granted = 0;
  std::uint64_t sub_id = sub.subscribe("aba", /*initial_credits=*/16, &granted);
  EXPECT_EQ(granted, 16u);

  // A batch that changes the relation enough to touch the cover.
  ApplyUpdateMsg update;
  update.dataset = "aba";
  RawTable extra = GenerateBenchmark("abalone", 140);
  for (int i = 120; i < 140; ++i) update.inserts.push_back(extra.rows[i]);
  UpdateOkMsg applied = writer.apply_update(update);
  EXPECT_GE(applied.seconds, 0.0);

  StreamEvent ev;
  bool got_update = false;
  for (int i = 0; i < 100 && !got_update; ++i) {
    if (!sub.poll_event(&ev, 0.2)) continue;
    if (ev.kind == StreamEvent::Kind::kCoverUpdate) {
      EXPECT_EQ(ev.sub_id, sub_id);
      EXPECT_EQ(ev.update.dataset, "aba");
      got_update = true;
    }
  }
  EXPECT_TRUE(got_update) << "no cover update within 20 s";

  sub.unsubscribe(sub_id);
  bool got_end = false;
  for (int i = 0; i < 100 && !got_end; ++i) {
    if (!sub.poll_event(&ev, 0.2)) continue;
    if (ev.kind == StreamEvent::Kind::kStreamEnd) {
      EXPECT_EQ(ev.end.reason, StreamEndReason::kUnsubscribed);
      got_end = true;
    }
  }
  EXPECT_TRUE(got_end);
}

TEST(NetServerTest, SlowConsumerIsDisconnectedWithoutStallingOthers) {
  ServerOptions options;
  options.max_buffered_events = 2;  // tiny buffer: overflow after 2 stalls
  options.heartbeat_seconds = 0;
  Stack stack(options);
  BlockingClient writer = stack.connect("writer");
  writer.register_dataset("aba", DemoCsv(), /*live=*/true);

  // The fast subscriber holds plenty of credits; the slow one has a single
  // credit and never grants more.
  BlockingClient fast = stack.connect("fast");
  std::uint64_t fast_id = fast.subscribe("aba", 64);
  BlockingClient slow = stack.connect("slow");
  std::uint64_t slow_id = slow.subscribe("aba", 1);

  // Enough batches to blow the slow consumer's 1 credit + 2 buffer slots.
  RawTable extra = GenerateBenchmark("abalone", 220);
  int sent_batches = 0;
  for (int b = 0; b < 6; ++b) {
    ApplyUpdateMsg update;
    update.dataset = "aba";
    for (int i = 120 + b * 10; i < 130 + b * 10; ++i) {
      update.inserts.push_back(extra.rows[i]);
    }
    writer.apply_update(update);
    ++sent_batches;
  }

  // The fast subscriber keeps consuming and granting: it must see every
  // batch even while the slow consumer dies.
  int fast_updates = 0;
  StreamEvent ev;
  for (int i = 0; i < 200 && fast_updates < sent_batches; ++i) {
    if (!fast.poll_event(&ev, 0.2)) continue;
    if (ev.kind == StreamEvent::Kind::kCoverUpdate) {
      EXPECT_EQ(ev.sub_id, fast_id);
      ++fast_updates;
      fast.grant_credits(fast_id, 1);
    }
  }
  EXPECT_EQ(fast_updates, sent_batches);

  // The slow subscriber gets its single credited event, then StreamEnd
  // (slow_consumer), then the server hangs up.
  bool got_end = false;
  try {
    for (int i = 0; i < 100 && !got_end; ++i) {
      if (!slow.poll_event(&ev, 0.2)) continue;
      if (ev.kind == StreamEvent::Kind::kStreamEnd) {
        EXPECT_EQ(ev.sub_id, slow_id);
        EXPECT_EQ(ev.end.reason, StreamEndReason::kSlowConsumer);
        got_end = true;
      }
    }
  } catch (const std::exception&) {
    // Connection may already be closed once the StreamEnd was flushed —
    // only acceptable after the StreamEnd was seen.
  }
  EXPECT_TRUE(got_end);
  EXPECT_GE(stack.metrics.counter("net.slow_consumer_disconnects").value(), 1);

  // And the rest of the server is fine.
  writer.ping();
  fast.ping();
}

TEST(NetServerTest, PeerResetMidStreamDoesNotHarmOtherClients) {
  ServerOptions options;
  options.heartbeat_seconds = 0.05;  // constant writes to streaming conns
  Stack stack(options);
  BlockingClient writer = stack.connect("writer");
  writer.register_dataset("aba", DemoCsv(), /*live=*/true);

  BlockingClient fast = stack.connect("fast");
  std::uint64_t fast_id = fast.subscribe("aba", 64);

  RawTable extra = GenerateBenchmark("abalone", 240);
  int batch = 0;
  auto push_batch = [&] {
    ApplyUpdateMsg update;
    update.dataset = "aba";
    for (int i = 120 + batch * 10; i < 130 + batch * 10; ++i) {
      update.inserts.push_back(extra.rows[i]);
    }
    writer.apply_update(update);
    ++batch;
  };

  // Rounds of: subscribe, receive stream traffic, vanish without goodbye.
  // Closing with unread data pending sends RST, so the server's next
  // heartbeat or fan-out write to that socket fails mid-send. Before the
  // deferred-death fix, that write error freed the Connection while
  // iterating callers still held it (use-after-free); now it is marked
  // dead and reaped at the end of the tick.
  for (int round = 0; round < 5; ++round) {
    auto doomed = std::make_unique<BlockingClient>(
        "127.0.0.1", stack.server->port(), "doomed", /*timeout_seconds=*/5);
    doomed->subscribe("aba", 8);
    push_batch();
    doomed.reset();  // frames still unread: this close resets the socket
    push_batch();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }

  // The surviving subscriber saw every batch and the server still talks.
  int fast_updates = 0;
  StreamEvent ev;
  for (int i = 0; i < 200 && fast_updates < batch; ++i) {
    if (!fast.poll_event(&ev, 0.2)) continue;
    if (ev.kind == StreamEvent::Kind::kCoverUpdate) {
      EXPECT_EQ(ev.sub_id, fast_id);
      ++fast_updates;
      fast.grant_credits(fast_id, 1);
    }
  }
  EXPECT_EQ(fast_updates, batch);
  writer.ping();
  fast.ping();
  EXPECT_GE(stack.metrics.counter("net.conns_closed").value(), 5);
}

TEST(NetServerTest, PollEventRestoresRpcTimeout) {
  SchedulerOptions sched;
  sched.num_threads = 1;
  Stack stack({}, sched);
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  // A zero-timeout poll must return promptly: SO_RCVTIMEO of 0 means "wait
  // forever", so poll_event has to clamp it up, not pass it through.
  StreamEvent ev;
  auto poll_start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.poll_event(&ev, 0.0));
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          poll_start)
                .count(),
            5.0);

  // Narrow the socket timeout via a short poll...
  EXPECT_FALSE(client.poll_event(&ev, 0.05));

  // ...then hold the single worker hostage for much longer than that poll
  // bound. The next RPC's answer cannot arrive until the release; it must
  // still succeed because poll_event restored the constructor's timeout.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  bool entered = false;
  ProfileJob blocker;
  blocker.dataset = "aba";
  blocker.options.stage_hook = [&](ProfileStage, double) {
    std::unique_lock<std::mutex> lock(gate_mu);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  JobHandlePtr running = stack.scheduler->submit(blocker);
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return entered; });
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    std::unique_lock<std::mutex> lock(gate_mu);
    release = true;
    gate_cv.notify_all();
  });
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  DiscoveryResultMsg result = client.submit_discovery(submit);
  EXPECT_FALSE(result.state.empty());
  releaser.join();
  running->wait();
}

TEST(NetServerTest, ConcurrentShutdownCallsAreSerialized) {
  Stack stack;
  BlockingClient writer = stack.connect("writer");
  writer.register_dataset("aba", DemoCsv(), /*live=*/true);
  BlockingClient sub = stack.connect("subscriber");
  sub.subscribe("aba", 8);

  // Every caller must block until the one real teardown finished — no
  // caller may return while the loop thread is still draining (a second
  // caller used to skip the join and shut the ops pool under the live
  // loop).
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] { stack.server->shutdown(); });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(stack.server->connections(), 0);
  stack.server->shutdown();  // still idempotent after the fact
}

TEST(NetServerTest, GracefulShutdownEndsStreamsAndDrains) {
  Stack stack;
  BlockingClient writer = stack.connect("writer");
  writer.register_dataset("aba", DemoCsv(), /*live=*/true);
  BlockingClient sub = stack.connect("subscriber");
  sub.subscribe("aba", 8);

  stack.server->shutdown();

  // The subscriber's stream ends with kServerShutdown before the socket
  // closes.
  StreamEvent ev;
  bool got_end = false;
  try {
    for (int i = 0; i < 20 && !got_end; ++i) {
      if (!sub.poll_event(&ev, 0.5)) continue;
      if (ev.kind == StreamEvent::Kind::kStreamEnd) {
        EXPECT_EQ(ev.end.reason, StreamEndReason::kServerShutdown);
        got_end = true;
      }
    }
  } catch (const std::exception&) {
  }
  EXPECT_TRUE(got_end);
  EXPECT_EQ(stack.server->connections(), 0);
}

TEST(NetServerTest, DrainingRefusesNewConnections) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.ping();
  stack.server->shutdown();
  EXPECT_THROW(
      {
        BlockingClient late = stack.connect("late");
        late.ping();
      },
      std::exception);
}

TEST(NetServerTest, MetricsShowUpInPrometheusExposition) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);
  client.ping();
  std::string text = PrometheusText(stack.metrics);
  EXPECT_NE(text.find("dhyfd_net_conns_accepted"), std::string::npos);
  EXPECT_NE(text.find("dhyfd_net_frames_rx"), std::string::npos);
  EXPECT_NE(text.find("dhyfd_net_connections"), std::string::npos);
  EXPECT_NE(text.find("dhyfd_net_request_seconds"), std::string::npos);
}

TEST(NetServerTest, CostTrailerPairsWithTracedRequests) {
  Stack stack;
  BlockingClient client = stack.connect("billed");
  EXPECT_FALSE(client.has_last_cost());

  // Untraced requests stay bare on the wire: no envelope out, no trailer
  // back, so the fast path pays nothing for attribution nobody asked for.
  client.register_dataset("plain", DemoCsv(), /*live=*/false);
  EXPECT_FALSE(client.has_last_cost());

  // A TraceIdScope opts the calls into end-to-end attribution even with
  // span recording off: the envelope crosses the wire and every
  // successful result comes back with its cost trailer.
  TraceIdScope traced(771);
  client.register_dataset("aba", DemoCsv(), /*live=*/true);
  ASSERT_TRUE(client.has_last_cost());
  EXPECT_GE(client.last_cost().run_seconds, 0.0);

  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  client.submit_discovery(submit);
  ASSERT_TRUE(client.has_last_cost());
  // Discovery validated FDs and burned CPU; the ledger must say so.
  EXPECT_GT(client.last_cost().validations, 0u);
  EXPECT_GT(client.last_cost().cpu_ns, 0u);

  CoverResultMsg cover = client.query_cover("aba", 3);
  EXPECT_GT(cover.total, 0u);
  ASSERT_TRUE(client.has_last_cost());
  EXPECT_GT(client.last_cost().bytes_streamed, 0u);

  // The per-RPC metrics saw traced and untraced work alike.
  EXPECT_GE(stack.metrics.counter("net.rpc.requests").value(), 4);
}

TEST(NetServerTest, ErrorRepliesCarryNoTrailer) {
  Stack stack;
  BlockingClient client = stack.connect();
  TraceIdScope traced(772);
  try {
    client.query_cover("missing");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrCode::kUnknownDataset);
  }
  // No trailer followed the error frame — the next RPC's reply frame is
  // its own result, not a stale kCostTrailer.
  EXPECT_FALSE(client.has_last_cost());
  client.register_dataset("aba", DemoCsv(), /*live=*/false);
  EXPECT_TRUE(client.has_last_cost());
}

TEST(NetServerTest, V2ClientSpeaksPlainProtocolWithoutTrailers) {
  Stack stack;
  BlockingClient client("127.0.0.1", stack.server->port(), "legacy-v2",
                        /*timeout_seconds=*/30, /*protocol_version=*/2);
  EXPECT_EQ(client.server_limits().protocol_version, 2u);

  // Every v2 request works unwrapped, and no trailer ever arrives —
  // the response stream stays exactly the pre-v3 sequence.
  client.register_dataset("aba", DemoCsv(), /*live=*/true);
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  EXPECT_EQ(client.submit_discovery(submit).state, "done");
  EXPECT_GT(client.query_cover("aba", 2).total, 0u);
  EXPECT_FALSE(client.has_last_cost());
  client.ping();
}

TEST(NetServerTest, MalformedTracedEnvelopeDropsConnection) {
  Stack stack;
  BlockingClient healthy = stack.connect("healthy");
  BlockingClient hostile = stack.connect("hostile");

  // A traced envelope whose inner type is itself kTracedRequest: the
  // server must refuse to recurse and drop the connection as a protocol
  // error, leaving other connections alone.
  WireWriter w;
  w.u64(1);  // trace_id
  w.u64(2);  // span_id
  w.u8(static_cast<std::uint8_t>(MsgType::kTracedRequest));
  std::vector<std::uint8_t> frame =
      EncodeFrame(MsgType::kTracedRequest, 7, w.bytes());
  hostile.send_bytes(reinterpret_cast<const char*>(frame.data()), frame.size());
  bool dropped = false;
  try {
    Frame f;
    dropped = !hostile.read_frame(&f);
  } catch (const std::exception&) {
    dropped = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_GE(stack.metrics.counter("net.protocol_errors").value(), 1);
  healthy.ping();
}

TEST(NetServerTest, MaxConnectionsAcceptThenClose) {
  ServerOptions options;
  options.max_connections = 1;
  Stack stack(options);
  BlockingClient first = stack.connect("first");
  first.ping();
  EXPECT_THROW(
      {
        BlockingClient second = stack.connect("second");
        second.ping();
      },
      std::exception);
  EXPECT_GE(stack.metrics.counter("net.conns_rejected").value(), 1);
  first.ping();  // the admitted connection is untouched
}

}  // namespace
}  // namespace dhyfd::net
