#include "fd/cover_io.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dhyfd {
namespace {

Schema ZipSchema() { return Schema({"city", "street", "zip"}); }

FdSet ZipCover() {
  FdSet fds;
  fds.add(Fd(AttributeSet{0, 1}, 2));
  fds.add(Fd(AttributeSet{2}, 0));
  return fds;
}

TEST(CoverIoTest, WriteFormat) {
  std::string text = WriteCoverString(ZipSchema(), ZipCover());
  EXPECT_NE(text.find("# schema: city,street,zip"), std::string::npos);
  EXPECT_NE(text.find("city, street -> zip"), std::string::npos);
  EXPECT_NE(text.find("zip -> city"), std::string::npos);
}

TEST(CoverIoTest, RoundTrip) {
  std::string text = WriteCoverString(ZipSchema(), ZipCover());
  LoadedCover loaded = ReadCoverString(text);
  EXPECT_EQ(loaded.schema.names(), ZipSchema().names());
  ASSERT_EQ(loaded.cover.size(), 2);
  EXPECT_EQ(loaded.cover.fds[0], ZipCover().fds[0]);
  EXPECT_EQ(loaded.cover.fds[1], ZipCover().fds[1]);
}

TEST(CoverIoTest, EmptyLhsRoundTrip) {
  FdSet fds;
  fds.add(Fd(AttributeSet{}, 1));
  std::string text = WriteCoverString(ZipSchema(), fds);
  EXPECT_NE(text.find("{} -> street"), std::string::npos);
  LoadedCover loaded = ReadCoverString(text);
  ASSERT_EQ(loaded.cover.size(), 1);
  EXPECT_TRUE(loaded.cover.fds[0].lhs.empty());
}

TEST(CoverIoTest, MultiRhsRoundTrip) {
  FdSet fds;
  fds.add(Fd(AttributeSet{2}, AttributeSet{0, 1}));
  LoadedCover loaded = ReadCoverString(WriteCoverString(ZipSchema(), fds));
  ASSERT_EQ(loaded.cover.size(), 1);
  EXPECT_EQ(loaded.cover.fds[0].rhs, (AttributeSet{0, 1}));
}

TEST(CoverIoTest, MissingSchemaHeaderThrows) {
  EXPECT_THROW(ReadCoverString("city -> zip\n"), std::runtime_error);
}

TEST(CoverIoTest, UnknownColumnThrows) {
  std::string text = "# schema: a,b\nnope -> b\n";
  EXPECT_THROW(ReadCoverString(text), std::runtime_error);
}

TEST(CoverIoTest, MissingArrowThrows) {
  std::string text = "# schema: a,b\na b\n";
  EXPECT_THROW(ReadCoverString(text), std::runtime_error);
}

TEST(CoverIoTest, EmptyRhsThrows) {
  std::string text = "# schema: a,b\na -> \n";
  EXPECT_THROW(ReadCoverString(text), std::runtime_error);
}

TEST(CoverIoTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# schema: a,b\n\n# a comment\na -> b\n\n";
  LoadedCover loaded = ReadCoverString(text);
  EXPECT_EQ(loaded.cover.size(), 1);
}

TEST(CoverIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/cover_io_test.fds";
  WriteCoverFile(ZipSchema(), ZipCover(), path);
  LoadedCover loaded = ReadCoverFile(path);
  EXPECT_EQ(loaded.cover.size(), 2);
  EXPECT_THROW(ReadCoverFile("/nonexistent/x.fds"), std::runtime_error);
}

TEST(CoverIoTest, WhitespaceTolerant) {
  std::string text = "# schema: a,b,c\n  a ,  b   ->   c \n";
  LoadedCover loaded = ReadCoverString(text);
  ASSERT_EQ(loaded.cover.size(), 1);
  EXPECT_EQ(loaded.cover.fds[0].lhs, (AttributeSet{0, 1}));
  EXPECT_EQ(loaded.cover.fds[0].rhs, AttributeSet{2});
}

}  // namespace
}  // namespace dhyfd
