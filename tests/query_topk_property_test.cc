// Oracle property tests for the rank-driven query engine.
//
//   * top-k: for many seeds, TopKDiscover's answer must equal "full
//     discovery -> rank -> truncate to k" with the deterministic tie order,
//     for every k from 1 past the cover size — the early-termination bound
//     must never cost a top-k member.
//   * approximate: tane(eps), dhyfd(eps), and the query engine must all
//     produce exactly the brute-force minimal approximate cover (every
//     candidate tested with the g3 removal counter over all LHS subsets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "algo/dhyfd.h"
#include "algo/discovery.h"
#include "algo/tane.h"
#include "partition/partition_ops.h"
#include "query/engine.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

std::string CoverString(FdSet fds) {
  fds.sort();
  std::string out;
  for (const Fd& fd : fds.fds) {
    out += fd.to_string();
    out += "\n";
  }
  return out;
}

std::string RankedString(const std::vector<RankedFd>& fds) {
  std::string out;
  for (const RankedFd& f : fds) {
    out += f.fd.to_string();
    out += " score=";
    out += std::to_string(f.score);
    out += "\n";
  }
  return out;
}

/// Exponential reference: the minimal approximate cover under the g3
/// removal budget, by testing every (X, A) candidate directly.
FdSet BruteForceApproxCover(const Relation& r, double epsilon) {
  const int m = r.num_cols();
  const int64_t budget = ApproxRemovalBudget(epsilon, r.num_rows());
  const int num_sets = 1 << m;
  // valid[x] = bitmask of RHS attributes A (not in X) with removals <= budget.
  std::vector<std::uint32_t> valid(num_sets, 0);
  for (int mask = 0; mask < num_sets; ++mask) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (mask & (1 << a)) x.set(a);
    }
    StrippedPartition pi = BuildPartition(r, x);
    for (AttrId a = 0; a < m; ++a) {
      if (x.test(a)) continue;
      if (ApproxFdRemovals(r, pi, a) <= budget) valid[mask] |= 1u << a;
    }
  }
  FdSet out;
  for (int mask = 0; mask < num_sets; ++mask) {
    std::uint32_t rhs = valid[mask];
    if (!rhs) continue;
    // Minimal iff no proper subset (drop one attribute) already validates A.
    for (int a = 0; a < m && rhs; ++a) {
      if (mask & (1 << a)) rhs &= ~valid[mask & ~(1 << a)];
    }
    for (AttrId a = 0; a < m; ++a) {
      if (!(rhs & (1u << a))) continue;
      AttributeSet x;
      for (int b = 0; b < m; ++b) {
        if (mask & (1 << b)) x.set(b);
      }
      out.add(Fd(x, a));
    }
  }
  return out;
}

TEST(TopKOracleTest, TopKEqualsFullRankTruncate) {
  // >= 8 seeds over varied shapes; each sweeps k across the whole range.
  struct Case {
    int seed, rows, cols, domain;
    double null_rate;
  };
  const std::vector<Case> cases = {
      {101, 30, 4, 2, 0.0}, {102, 50, 5, 3, 0.0},  {103, 80, 4, 4, 0.1},
      {104, 25, 6, 2, 0.0}, {105, 120, 5, 6, 0.0}, {106, 40, 5, 3, 0.3},
      {107, 60, 6, 2, 0.1}, {108, 90, 4, 8, 0.0},  {109, 15, 5, 2, 0.5},
  };
  for (const Case& c : cases) {
    Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
    QueryResult full = QueryEngine().execute(r, DiscoveryQuery{});
    const std::size_t n = full.fds.size();
    for (std::uint32_t k = 1; k <= n + 1; ++k) {
      DiscoveryQuery q;
      q.top_k = k;
      QueryResult got = QueryEngine().execute(r, q);
      std::vector<RankedFd> expected(
          full.fds.begin(),
          full.fds.begin() + std::min<std::size_t>(k, n));
      EXPECT_EQ(RankedString(got.fds), RankedString(expected))
          << "seed=" << c.seed << " k=" << k;
    }
  }
}

TEST(TopKOracleTest, TopKUnderEpsilonAndArity) {
  // The truncate oracle must also hold with epsilon and arity bounds mixed
  // in, since the top-k walk prunes with all three at once.
  for (int seed : {201, 202, 203, 204, 205, 206, 207, 208}) {
    Relation r = RandomRelation(seed, 40, 5, 3, 0.1);
    DiscoveryQuery base;
    base.epsilon = 0.1;
    base.max_lhs = 2;
    QueryResult full = QueryEngine().execute(r, base);
    for (std::uint32_t k : {1u, 2u, 3u, 5u}) {
      DiscoveryQuery q = base;
      q.top_k = k;
      QueryResult got = QueryEngine().execute(r, q);
      std::vector<RankedFd> expected(
          full.fds.begin(),
          full.fds.begin() +
              std::min<std::size_t>(k, full.fds.size()));
      EXPECT_EQ(RankedString(got.fds), RankedString(expected))
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(ApproxOracleTest, AlgorithmsMatchBruteForceApproxCover) {
  for (int seed : {301, 302, 303, 304, 305, 306, 307, 308}) {
    Relation r = RandomRelation(seed, 24, 4, 2, seed % 2 ? 0.2 : 0.0);
    for (double eps : {0.05, 0.15, 0.4}) {
      FdSet expected = BruteForceApproxCover(r, eps);
      TaneOptions topt;
      topt.epsilon = eps;
      DhyfdOptions dopt;
      dopt.epsilon = eps;
      EXPECT_EQ(CoverString(Tane(topt).discover(r).fds), CoverString(expected))
          << "tane seed=" << seed << " eps=" << eps;
      EXPECT_EQ(CoverString(Dhyfd(dopt).discover(r).fds),
                CoverString(expected))
          << "dhyfd seed=" << seed << " eps=" << eps;
      DiscoveryQuery q;
      q.epsilon = eps;
      EXPECT_EQ(CoverString(QueryEngine().execute(r, q).cover()),
                CoverString(expected))
          << "query seed=" << seed << " eps=" << eps;
      // The top-k lattice under the same epsilon, with k past the cover
      // size, must find the identical cover.
      q.top_k = static_cast<std::uint32_t>(expected.size()) + 1;
      EXPECT_EQ(CoverString(QueryEngine().execute(r, q).cover()),
                CoverString(expected))
          << "topk seed=" << seed << " eps=" << eps;
    }
  }
}

TEST(ApproxOracleTest, EpsilonZeroMatchesExactBruteForce) {
  for (int seed : {401, 402, 403, 404}) {
    Relation r = RandomRelation(seed, 30, 4, 3);
    FdSet exact = BruteForceDiscover(r);
    FdSet approx0 = BruteForceApproxCover(r, 0);
    EXPECT_EQ(CoverString(approx0), CoverString(exact)) << seed;
  }
}

}  // namespace
}  // namespace dhyfd
