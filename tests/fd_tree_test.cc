#include "fdtree/fd_tree.h"

#include <gtest/gtest.h>

namespace dhyfd {
namespace {

TEST(FdTreeTest, AddAndCollect) {
  FdTree tree(5);
  tree.add(AttributeSet{0}, 1);
  tree.add(AttributeSet{0, 1}, 2);
  FdSet fds = tree.collect();
  fds.sort();
  ASSERT_EQ(fds.size(), 2);
  EXPECT_EQ(fds.fds[0], Fd(AttributeSet{0}, 1));
  EXPECT_EQ(fds.fds[1], Fd(AttributeSet{0, 1}, 2));
}

TEST(FdTreeTest, ContainsGeneralization) {
  FdTree tree(5);
  tree.add(AttributeSet{0, 2}, 3);
  EXPECT_TRUE(tree.contains_generalization(AttributeSet{0, 1, 2}, 3));
  EXPECT_TRUE(tree.contains_generalization(AttributeSet{0, 2}, 3));
  EXPECT_FALSE(tree.contains_generalization(AttributeSet{0, 1}, 3));
  EXPECT_FALSE(tree.contains_generalization(AttributeSet{0, 1, 2}, 4));
}

TEST(FdTreeTest, RootFdIsGeneralizationOfEverything) {
  FdTree tree(4);
  tree.add(AttributeSet{}, 2);
  EXPECT_TRUE(tree.contains_generalization(AttributeSet{0, 1}, 2));
  EXPECT_TRUE(tree.contains_generalization(AttributeSet{}, 2));
}

TEST(FdTreeTest, InductRemovesRefutedAndSpecializes) {
  // Start with {} -> 2; non-FD {0} !-> 2 should specialize to {1} -> 2 and
  // {3} -> 2 (attribute 0 excluded: subset of the non-FD LHS; 2 excluded:
  // trivial).
  FdTree tree(4);
  tree.add(AttributeSet{}, 2);
  tree.induct(AttributeSet{0}, 2);
  FdSet fds = tree.collect();
  fds.sort();
  ASSERT_EQ(fds.size(), 2);
  EXPECT_EQ(fds.fds[0], Fd(AttributeSet{1}, 2));
  EXPECT_EQ(fds.fds[1], Fd(AttributeSet{3}, 2));
}

TEST(FdTreeTest, InductKeepsUnrelatedFds) {
  FdTree tree(4);
  tree.add(AttributeSet{0}, 1);
  tree.add(AttributeSet{0}, 3);
  tree.induct(AttributeSet{0, 2}, 1);  // refutes {0} -> 1 only
  FdSet fds = tree.collect();
  bool has_03 = false, has_01 = false;
  for (const Fd& fd : fds.fds) {
    if (fd == Fd(AttributeSet{0}, 3)) has_03 = true;
    if (fd == Fd(AttributeSet{0}, 1)) has_01 = true;
  }
  EXPECT_TRUE(has_03);
  EXPECT_FALSE(has_01);
}

TEST(FdTreeTest, InductIsMinimal) {
  FdTree tree(4);
  tree.add(AttributeSet{}, 3);
  tree.add(AttributeSet{1}, 3);  // pre-existing specialization
  tree.induct(AttributeSet{0}, 3);
  FdSet fds = tree.collect();
  // {1} -> 3 must appear once, not duplicated by the specialization step.
  int count_13 = 0;
  for (const Fd& fd : fds.fds) {
    if (fd == Fd(AttributeSet{1}, 3)) ++count_13;
  }
  EXPECT_EQ(count_13, 1);
}

TEST(FdTreeTest, NodeCountGrowsOnAdd) {
  FdTree tree(5);
  size_t base = tree.node_count();
  tree.add(AttributeSet{0, 1, 2}, 3);
  EXPECT_EQ(tree.node_count(), base + 3);
  tree.add(AttributeSet{0, 1}, 4);  // shares the existing path
  EXPECT_EQ(tree.node_count(), base + 3);
}

TEST(FdTreeTest, LabelCountReflectsPropagation) {
  FdTree tree(5);
  tree.add(AttributeSet{0, 1, 2}, 3);
  // Classic labeling: the label 3 sits on the root and every path node.
  EXPECT_EQ(tree.label_count(), 4);
}

}  // namespace
}  // namespace dhyfd
