#include "algo/validator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

StrippedPartition WholeRelationPartition(const Relation& r) {
  return StrippedPartition::whole(r.num_rows());
}

TEST(ValidatorTest, ValidFdKeepsAllRhs) {
  Relation r = FromValues({{0, 5}, {0, 5}, {1, 6}});
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet{0}, AttributeSet{1}, p0,
                                              AttributeSet{0}, refiner);
  EXPECT_EQ(v.valid_rhs, AttributeSet{1});
  EXPECT_TRUE(v.violations.empty());
}

TEST(ValidatorTest, InvalidFdProducesViolation) {
  Relation r = FromValues({{0, 5}, {0, 6}});
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet{0}, AttributeSet{1}, p0,
                                              AttributeSet{0}, refiner);
  EXPECT_TRUE(v.valid_rhs.empty());
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0], AttributeSet{0});  // the pair agrees exactly on 0
}

TEST(ValidatorTest, RefinesFromSubsetPartition) {
  // Validate {0,1} -> 2 starting from pi_{0} only.
  Relation r = FromValues({{0, 0, 7}, {0, 0, 7}, {0, 1, 8}, {1, 0, 9}});
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet{0, 1}, AttributeSet{2},
                                              p0, AttributeSet{0}, refiner);
  EXPECT_EQ(v.valid_rhs, AttributeSet{2});
  EXPECT_GT(v.refinements, 0);
}

TEST(ValidatorTest, MultiRhsPartialValidity) {
  // {0} -> 1 valid, {0} -> 2 invalid.
  Relation r = FromValues({{0, 5, 1}, {0, 5, 2}, {1, 6, 3}});
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet{0}, AttributeSet{1, 2},
                                              p0, AttributeSet{0}, refiner);
  EXPECT_EQ(v.valid_rhs, AttributeSet{1});
  ASSERT_EQ(v.violations.size(), 1u);
  // The violating pair (rows 0 and 1) agrees on {0, 1}.
  EXPECT_EQ(v.violations[0], (AttributeSet{0, 1}));
}

TEST(ValidatorTest, ViolationsBoundedByRhsSize) {
  Relation r = RandomRelation(3, 300, 5, 2);
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  AttributeSet rhs = AttributeSet{1, 2, 3, 4};
  ValidationOutcome v =
      ValidateWithPartition(r, AttributeSet{0}, rhs, p0, AttributeSet{0}, refiner);
  EXPECT_LE(static_cast<int>(v.violations.size()), rhs.count());
}

TEST(ValidatorTest, EmptyLhsAgainstWholeRelation) {
  Relation r = FromValues({{7, 1}, {7, 2}, {7, 3}});
  PartitionRefiner refiner(r);
  StrippedPartition whole = WholeRelationPartition(r);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet(), AttributeSet{0, 1},
                                              whole, AttributeSet(), refiner);
  EXPECT_EQ(v.valid_rhs, AttributeSet{0});  // column 0 constant, column 1 not
}

TEST(ValidatorTest, AgreementWithBruteForce) {
  for (int seed = 0; seed < 8; ++seed) {
    Relation r = RandomRelation(seed * 7 + 1, 80, 4, 3);
    PartitionRefiner refiner(r);
    StrippedPartition p0 = BuildAttributePartition(r, 0);
    AttributeSet lhs{0, 1};
    AttributeSet rhs{2, 3};
    ValidationOutcome v =
        ValidateWithPartition(r, lhs, rhs, p0, AttributeSet{0}, refiner);
    rhs.for_each([&](AttrId a) {
      EXPECT_EQ(v.valid_rhs.test(a), r.satisfies(lhs, a))
          << "seed=" << seed << " rhs=" << a;
    });
  }
}

TEST(ValidatorTest, EmptyRhsShortCircuits) {
  Relation r = FromValues({{0}, {0}});
  PartitionRefiner refiner(r);
  StrippedPartition p0 = BuildAttributePartition(r, 0);
  ValidationOutcome v = ValidateWithPartition(r, AttributeSet{0}, AttributeSet(), p0,
                                              AttributeSet{0}, refiner);
  EXPECT_TRUE(v.valid_rhs.empty());
  EXPECT_EQ(v.pairs_checked, 0);
}

}  // namespace
}  // namespace dhyfd
