#include "incr/live_relation.h"

#include <gtest/gtest.h>

#include "relation/csv.h"
#include "test_util.h"

namespace dhyfd {
namespace {

RawTable SmallTable() {
  RawTable t;
  t.header = {"a", "b", "c"};
  t.rows = {
      {"x", "1", "p"},
      {"y", "1", "q"},
      {"x", "2", "p"},
  };
  return t;
}

TEST(DeltaEncoderTest, MatchesBatchEncoderOnStaticData) {
  RawTable t = SmallTable();
  EncodedRelation batch = EncodeRelation(t);
  DeltaEncoder delta(t);
  const Relation& r = delta.relation();
  ASSERT_EQ(r.num_rows(), batch.relation.num_rows());
  ASSERT_EQ(r.num_cols(), batch.relation.num_cols());
  for (RowId i = 0; i < r.num_rows(); ++i) {
    for (int c = 0; c < r.num_cols(); ++c) {
      EXPECT_EQ(r.value(i, c), batch.relation.value(i, c));
      EXPECT_EQ(r.is_null(i, c), batch.relation.is_null(i, c));
    }
  }
  for (int c = 0; c < r.num_cols(); ++c) {
    EXPECT_EQ(r.domain_size(c), batch.relation.domain_size(c));
  }
}

TEST(DeltaEncoderTest, AppendReusesAndGrowsCodes) {
  DeltaEncoder delta(SmallTable());
  RowId r3 = delta.append({"x", "3", "q"});
  EXPECT_EQ(r3, 3);
  const Relation& r = delta.relation();
  // "x" and "q" reuse existing codes; "3" grows column b's domain.
  EXPECT_EQ(r.value(3, 0), r.value(0, 0));
  EXPECT_EQ(r.value(3, 2), r.value(1, 2));
  EXPECT_EQ(r.domain_size(1), 3);
  EXPECT_EQ(delta.decode(3, 1), "3");
}

TEST(DeltaEncoderTest, NullSemanticsMatchBatchEncoder) {
  RawTable t = SmallTable();
  t.rows[1][1] = "";
  for (NullSemantics sem :
       {NullSemantics::kNullEqualsNull, NullSemantics::kNullNotEqualsNull}) {
    DeltaEncoder delta(t, sem);
    delta.append({"z", "", "p"});

    RawTable full = t;
    full.rows.push_back({"z", "", "p"});
    EncodedRelation batch = EncodeRelation(full, sem);
    const Relation& r = delta.relation();
    EXPECT_TRUE(r.is_null(1, 1));
    EXPECT_TRUE(r.is_null(3, 1));
    // Two nulls agree exactly under kNullEqualsNull.
    EXPECT_EQ(r.value(1, 1) == r.value(3, 1),
              sem == NullSemantics::kNullEqualsNull);
    EXPECT_EQ(r.value(1, 1) == r.value(3, 1),
              batch.relation.value(1, 1) == batch.relation.value(3, 1));
  }
}

TEST(LiveRelationTest, GroupsSupportsAndDistinctTrackMutations) {
  LiveRelation rel(SmallTable());
  EXPECT_EQ(rel.live_rows(), 3);
  EXPECT_EQ(rel.live_distinct(0), 2);  // x, y
  EXPECT_EQ(rel.live_distinct(1), 2);  // 1, 2
  EXPECT_EQ(rel.group(0, rel.relation().value(0, 0)).size(), 2u);  // rows 0, 2
  EXPECT_EQ(rel.live_attribute_support(0), 2);  // the {x} group

  RowId t = rel.insert_row({"y", "2", "r"});
  EXPECT_EQ(rel.live_rows(), 4);
  EXPECT_EQ(rel.live_distinct(2), 3);                 // p, q, r
  EXPECT_EQ(rel.live_attribute_support(0), 4);        // {x}, {y} both size 2
  EXPECT_EQ(rel.group(0, rel.relation().value(t, 0)), (std::vector<RowId>{1, 3}));

  rel.erase_row(1);
  EXPECT_EQ(rel.live_rows(), 3);
  EXPECT_FALSE(rel.is_live(1));
  EXPECT_EQ(rel.live_attribute_support(0), 2);  // {y} collapsed to size 1
  rel.erase_row(t);
  EXPECT_EQ(rel.live_distinct(2), 1);  // only p remains live in c
  EXPECT_EQ(rel.live_attribute_partition(0).size(), 1);
}

TEST(LiveRelationTest, ExternalIdsSurviveCompaction) {
  LiveRelation rel(SmallTable());
  RowId t = rel.insert_row({"z", "9", "s"});
  LiveRowId id3 = rel.id_of(t);
  EXPECT_EQ(id3, 3);
  rel.erase_row(0);
  rel.erase_row(2);
  EXPECT_GT(rel.tombstone_fraction(), 0.4);

  rel.compact();
  EXPECT_EQ(rel.storage_rows(), 2);
  EXPECT_EQ(rel.tombstone_fraction(), 0.0);
  // Ids 1 and 3 survive; 0 and 2 are gone.
  EXPECT_EQ(rel.row_of(0), -1);
  EXPECT_EQ(rel.row_of(2), -1);
  ASSERT_GE(rel.row_of(1), 0);
  ASSERT_GE(rel.row_of(id3), 0);
  EXPECT_EQ(rel.decode(rel.row_of(1), 0), "y");
  EXPECT_EQ(rel.decode(rel.row_of(id3), 0), "z");
  // Codes are dense again after compaction.
  for (int c = 0; c < rel.num_cols(); ++c) {
    EXPECT_EQ(rel.relation().domain_size(c), 2);
    EXPECT_EQ(rel.live_distinct(c), 2);
  }
  // The relation stays usable after compaction.
  RowId u = rel.insert_row({"y", "9", "s"});
  EXPECT_EQ(rel.id_of(u), 4);
  EXPECT_EQ(rel.group(0, rel.relation().value(u, 0)).size(), 2u);
}

TEST(LiveRelationTest, SnapshotMatchesBatchEncodingOfLiveRows) {
  LiveRelation rel(SmallTable());
  rel.insert_row({"y", "3", "q"});
  rel.erase_row(0);

  RawTable expected;
  expected.header = {"a", "b", "c"};
  expected.rows = {{"y", "1", "q"}, {"x", "2", "p"}, {"y", "3", "q"}};
  Relation want = EncodeRelation(expected).relation;

  Relation got = rel.snapshot();
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (RowId i = 0; i < got.num_rows(); ++i) {
    for (int c = 0; c < got.num_cols(); ++c) {
      EXPECT_EQ(got.value(i, c), want.value(i, c));
    }
  }
  for (int c = 0; c < got.num_cols(); ++c) {
    EXPECT_EQ(got.domain_size(c), want.domain_size(c));
  }
}

TEST(LiveRelationTest, RefinerSurvivesDomainGrowth) {
  LiveRelation rel(SmallTable());
  // Use the refiner, then grow a domain past its scratch capacity and use
  // it again; the lazily re-created refiner must see the new codes.
  StrippedPartition pi0 = rel.refiner().refine(rel.live_attribute_partition(0), 1);
  EXPECT_EQ(pi0.size(), 0);  // {x} splits on b into singletons
  for (int i = 0; i < 10; ++i) {
    rel.insert_row({"w", "v" + std::to_string(i), "p"});
  }
  StrippedPartition pi = rel.refiner().refine(rel.live_attribute_partition(2), 0);
  // The live "p" group refines by column a into {0,2} and the ten new "w"s.
  ASSERT_EQ(pi.size(), 2);
  EXPECT_EQ(pi.cluster(0).size() + pi.cluster(1).size(), 12u);
}

TEST(LiveRelationTest, DistinctPairWitnessesRootRefutation) {
  LiveRelation rel(SmallTable());
  auto [u, v] = rel.distinct_pair(1);
  ASSERT_GE(u, 0);
  EXPECT_NE(rel.relation().value(u, 1), rel.relation().value(v, 1));
  rel.erase_row(2);  // b collapses to the single value "1"
  EXPECT_EQ(rel.distinct_pair(1).first, -1);
  EXPECT_EQ(rel.whole_live_cluster().size(), 1);
}

}  // namespace
}  // namespace dhyfd
