#include "algo/hyfd.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::HoldsBruteForce;
using testutil::RandomRelation;

TEST(HyfdTest, MatchesBruteForceOnRandomData) {
  for (int seed = 1; seed <= 10; ++seed) {
    Relation r = RandomRelation(seed * 17, 40, 5, 3);
    DiscoveryResult res = Hyfd().discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "") << "seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size()) << "seed=" << seed;
  }
}

TEST(HyfdTest, OutputLeftReducedAndValid) {
  Relation r = RandomRelation(5, 80, 6, 3);
  DiscoveryResult res = Hyfd().discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
  for (const Fd& fd : res.fds.fds) {
    EXPECT_TRUE(HoldsBruteForce(r, fd)) << fd.to_string();
  }
}

TEST(HyfdTest, ConstantColumn) {
  Relation r = FromValues({{3, 0}, {3, 1}, {3, 2}});
  DiscoveryResult res = Hyfd().discover(r);
  ASSERT_GE(res.fds.size(), 1);
  EXPECT_EQ(res.fds.fds[0], Fd(AttributeSet{}, 0));
}

TEST(HyfdTest, WiderRelation) {
  Relation r = RandomRelation(23, 60, 8, 2);
  DiscoveryResult res = Hyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 8), "");
}

TEST(HyfdTest, TallerRelation) {
  Relation r = RandomRelation(29, 600, 4, 6);
  DiscoveryResult res = Hyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 4), "");
}

TEST(HyfdTest, SwitchThresholdStillExact) {
  // Extreme thresholds exercise both phases; the result must not change.
  Relation r = RandomRelation(31, 100, 5, 3);
  HyfdOptions always_sample;
  always_sample.validation_switch_threshold = 0.0;  // switch on any invalid
  HyfdOptions never_sample;
  never_sample.validation_switch_threshold = 1.1;  // never switch back
  DiscoveryResult a = Hyfd(always_sample).discover(r);
  DiscoveryResult b = Hyfd(never_sample).discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, a.fds, 5), "");
  EXPECT_EQ(CoverDifference(expected, b.fds, 5), "");
}

TEST(HyfdTest, EmptyAndTinyRelations) {
  DiscoveryResult res0 = Hyfd().discover(FromValues({}));
  SUCCEED();
  DiscoveryResult res1 = Hyfd().discover(FromValues({{1, 2, 3}}));
  EXPECT_EQ(res1.fds.size(), 3);
}

TEST(HyfdTest, StatsPopulated) {
  // Planted FDs guarantee a non-empty tree, so validation levels run.
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 200; ++i) {
    int a = i % 20, b = (i * 7) % 10;
    rows.push_back({a, b, (a * 3 + b) % 17, i % 4, (i * 5) % 6});
  }
  Relation r = FromValues(rows);
  DiscoveryResult res = Hyfd().discover(r);
  EXPECT_GT(res.fds.size(), 0);
  EXPECT_GT(res.stats.validations, 0);
  EXPECT_GT(res.stats.pairs_compared, 0);
  EXPECT_GE(res.stats.levels, 1);
}

TEST(HyfdTest, NoFdsAtAllIsHandled) {
  // Dense random data over a tiny domain can satisfy no FD whatsoever; the
  // algorithm must return an empty cover, not loop or crash.
  Relation r = RandomRelation(41, 150, 5, 3);
  DiscoveryResult res = Hyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(res.fds.size(), expected.size());
  EXPECT_GT(res.stats.pairs_compared, 0);  // sampling pairs counted
}

}  // namespace
}  // namespace dhyfd
