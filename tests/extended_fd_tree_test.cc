#include "fdtree/extended_fd_tree.h"

#include <gtest/gtest.h>

namespace dhyfd {
namespace {

TEST(ExtendedFdTreeTest, AddFdAndCollect) {
  // Paper Figure 1 (right): A -> B, AB -> CD, CD -> B over R = {A..E}.
  ExtendedFdTree tree(5);
  tree.add_fd(AttributeSet{0}, AttributeSet{1});
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{2, 3});
  tree.add_fd(AttributeSet{2, 3}, AttributeSet{1});
  FdSet fds = tree.collect();
  fds.sort();
  ASSERT_EQ(fds.size(), 4);  // singleton RHSs: A->B, AB->C, AB->D, CD->B
  EXPECT_EQ(tree.total_fd_count(), 4);
}

TEST(ExtendedFdTreeTest, OnlyFdNodesCarryLabels) {
  ExtendedFdTree tree(5);
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{2});
  // Node A (depth 1) is not an FD-node; node B under A is.
  ExtendedFdTree::Node* a = tree.root()->find_child(0);
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->is_fd_node());
  ExtendedFdTree::Node* b = a->find_child(1);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->is_fd_node());
  EXPECT_EQ(b->rhs, AttributeSet{2});
}

TEST(ExtendedFdTreeTest, DefaultIdsAreAttributes) {
  ExtendedFdTree tree(5);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 2}, AttributeSet{4});
  ExtendedFdTree::Node* a = tree.root()->find_child(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->id, 0);
  // Depth 2 > cl = 1: child inherits the parent's id.
  ExtendedFdTree::Node* c = a->find_child(2);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->id, 0);
}

TEST(ExtendedFdTreeTest, IdInheritanceBelowControlledLevel) {
  ExtendedFdTree tree(6);
  tree.set_controlled_level(2);
  tree.add_fd(AttributeSet{0, 2, 4}, AttributeSet{5});
  ExtendedFdTree::Node* a = tree.root()->find_child(0);
  ExtendedFdTree::Node* c = a->find_child(2);
  ExtendedFdTree::Node* e = c->find_child(4);
  // Depths 1 and 2 get default ids; depth 3 > cl inherits from depth 2.
  EXPECT_EQ(a->id, 0);
  EXPECT_EQ(c->id, 2);
  EXPECT_EQ(e->id, 2);
}

TEST(ExtendedFdTreeTest, PathOf) {
  ExtendedFdTree tree(6);
  tree.add_fd(AttributeSet{1, 3, 5}, AttributeSet{0});
  std::vector<ExtendedFdTree::Node*> level3 = tree.level_nodes(3);
  ASSERT_EQ(level3.size(), 1u);
  EXPECT_EQ(tree.path_of(level3[0]), (AttributeSet{1, 3, 5}));
}

TEST(ExtendedFdTreeTest, LevelNodes) {
  ExtendedFdTree tree(6);
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{2});
  tree.add_fd(AttributeSet{0, 3}, AttributeSet{2});
  tree.add_fd(AttributeSet{4}, AttributeSet{5});
  EXPECT_EQ(tree.level_nodes(1).size(), 2u);  // nodes 0 and 4
  EXPECT_EQ(tree.level_nodes(2).size(), 2u);  // nodes 1 and 3 under 0
  EXPECT_EQ(tree.level_nodes(3).size(), 0u);
  EXPECT_EQ(tree.depth(), 2);
}

TEST(ExtendedFdTreeTest, CoveredRhs) {
  ExtendedFdTree tree(6);
  tree.add_fd(AttributeSet{0}, AttributeSet{2});
  tree.add_fd(AttributeSet{1, 3}, AttributeSet{4});
  // For LHS {0,1,3}: RHS 2 covered via {0} -> 2, RHS 4 via {1,3} -> 4.
  AttributeSet covered =
      tree.covered_rhs(AttributeSet{0, 1, 3}, AttributeSet{2, 4, 5});
  EXPECT_EQ(covered, (AttributeSet{2, 4}));
  // For LHS {1}: nothing is covered.
  EXPECT_TRUE(tree.covered_rhs(AttributeSet{1}, AttributeSet{2, 4}).empty());
}

TEST(ExtendedFdTreeTest, CoveredRhsIncludesRoot) {
  ExtendedFdTree tree(4);
  tree.init_root_fd(AttributeSet{3});
  EXPECT_EQ(tree.covered_rhs(AttributeSet{0}, AttributeSet{2, 3}), AttributeSet{3});
}

TEST(ExtendedFdTreeTest, SynergizedInductionFromRoot) {
  // Paper Example 2 setup, starting simpler: tree = {} -> R over 4 attrs,
  // non-FD {0} !-> {1,2,3}: every attr j in {1,2,3} must be re-derivable
  // only through minimal specializations.
  ExtendedFdTree tree(4);
  tree.init_root_fd(AttributeSet::full(4));
  tree.induct(AttributeSet{0}, AttributeSet{1, 2, 3});
  FdSet fds = tree.collect();
  for (const Fd& fd : fds.fds) {
    // No surviving FD may be refuted: LHS subset of {0} and RHS in {1,2,3}.
    bool refuted = fd.lhs.is_subset_of(AttributeSet{0}) &&
                   fd.rhs.intersects(AttributeSet{1, 2, 3});
    EXPECT_FALSE(refuted) << fd.to_string();
  }
  // {} -> 0 must survive (0 was not in the non-FD's RHS).
  EXPECT_EQ(tree.root()->rhs, AttributeSet{0});
}

TEST(ExtendedFdTreeTest, PaperExample2) {
  // FD AC -> E is the only path (A=0, B=1, C=2, D=3, E=4). Applying the
  // non-FD AC !-> BDE must induce ABC -> E and ACD -> E.
  ExtendedFdTree tree(5);
  tree.add_fd(AttributeSet{0, 2}, AttributeSet{4});
  tree.induct(AttributeSet{0, 2}, AttributeSet{1, 3, 4});
  FdSet fds = tree.collect();
  fds.sort();
  ASSERT_EQ(fds.size(), 2);
  EXPECT_EQ(fds.fds[0], Fd(AttributeSet{0, 1, 2}, 4));
  EXPECT_EQ(fds.fds[1], Fd(AttributeSet{0, 2, 3}, 4));
  // Node C (2) under A (0) is no longer an FD-node.
  ExtendedFdTree::Node* a = tree.root()->find_child(0);
  ExtendedFdTree::Node* c = a->find_child(2);
  EXPECT_FALSE(c->is_fd_node());
}

TEST(ExtendedFdTreeTest, PaperExample3) {
  // FDs AC -> E and AC -> BE; non-FD AC !-> BDE. Expected candidates:
  // from AC -> E: ABC -> E, ACD -> E; from AC -> BE additionally
  // ACD -> B(E), ABC -> E, ACE -> B. Minimality must deduplicate.
  ExtendedFdTree tree(6);
  tree.add_fd(AttributeSet{0, 2}, AttributeSet{1, 4});
  tree.induct(AttributeSet{0, 2}, AttributeSet{1, 3, 4});
  FdSet fds = tree.collect();
  // Every resulting FD must be non-refuted and minimal.
  for (const Fd& fd : fds.fds) {
    EXPECT_FALSE(fd.lhs.is_subset_of(AttributeSet{0, 2}));
    EXPECT_FALSE(fd.lhs.intersects(fd.rhs));
  }
  // ACE -> B (LHS {0,2,4}, RHS 1) comes from the removed-attribute case.
  bool has_ace_b = false;
  for (const Fd& fd : fds.fds) {
    if (fd.lhs == (AttributeSet{0, 2, 4}) && fd.rhs.test(1)) has_ace_b = true;
  }
  EXPECT_TRUE(has_ace_b);
}

TEST(ExtendedFdTreeTest, ResetIds) {
  ExtendedFdTree tree(5);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 2, 3}, AttributeSet{4});
  std::vector<ExtendedFdTree::Node*> level3 = tree.level_nodes(3);
  ASSERT_EQ(level3.size(), 1u);
  level3[0]->id = 99;  // simulate a dynamic id
  tree.reset_ids();
  EXPECT_EQ(level3[0]->id, 3);
}

TEST(ExtendedFdTreeTest, NodeCount) {
  ExtendedFdTree tree(5);
  EXPECT_EQ(tree.node_count(), 1u);  // root
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{2});
  EXPECT_EQ(tree.node_count(), 3u);
  tree.add_fd(AttributeSet{0, 3}, AttributeSet{2});
  EXPECT_EQ(tree.node_count(), 4u);
}

TEST(ExtendedFdTreeTest, InductNoMatchingPathsIsNoop) {
  ExtendedFdTree tree(5);
  tree.add_fd(AttributeSet{1, 2}, AttributeSet{3});
  tree.induct(AttributeSet{0}, AttributeSet{3, 4});
  FdSet fds = tree.collect();
  ASSERT_EQ(fds.size(), 1);
  EXPECT_EQ(fds.fds[0], Fd(AttributeSet{1, 2}, 3));
}

}  // namespace
}  // namespace dhyfd
