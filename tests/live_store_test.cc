#include "service/live_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dhyfd {
namespace {

RawTable Table(int first_row, int rows) {
  RawTable t;
  t.header = {"a", "b", "c"};
  for (int i = first_row; i < first_row + rows; ++i) {
    t.rows.push_back({std::to_string(i), std::to_string(i % 3),
                      std::to_string((i % 3) * 2)});
  }
  return t;
}

std::vector<std::string> Row(int i) {
  return {std::to_string(i), std::to_string(i % 5), std::to_string(i % 2)};
}

TEST(LiveStoreTest, CreateSubmitAndRead) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 2);
  store.create("t", Table(0, 20));
  EXPECT_TRUE(store.contains("t"));
  EXPECT_EQ(store.live_rows("t"), 20);

  UpdateBatch batch;
  batch.inserts.push_back(Row(100));
  batch.deletes.push_back(0);
  UpdateJobHandlePtr h = store.submit({"t", batch});
  const CoverDelta& d = h->delta();
  EXPECT_EQ(h->state(), UpdateJobState::kDone);
  EXPECT_EQ(d.stats.rows_inserted, 1);
  EXPECT_EQ(d.stats.rows_deleted, 1);
  EXPECT_EQ(store.live_rows("t"), 20);
  EXPECT_FALSE(store.cover("t").empty());
  EXPECT_FALSE(store.ranking("t").empty());
  EXPECT_EQ(metrics.counter("incr.batches").value(), 1);
  EXPECT_EQ(metrics.counter("incr.rows_inserted").value(), 1);
  EXPECT_EQ(metrics.counter("incr.rows_deleted").value(), 1);
}

TEST(LiveStoreTest, UnknownDatasetFailsCleanly) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 1);
  UpdateJobHandlePtr h = store.submit({"nope", UpdateBatch{}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->state(), UpdateJobState::kFailed);
  EXPECT_NE(h->error().find("unknown"), std::string::npos);
  EXPECT_THROW(h->delta(), std::runtime_error);
  EXPECT_EQ(metrics.counter("incr.jobs_failed").value(), 1);
  EXPECT_THROW(store.cover("nope"), std::invalid_argument);
}

TEST(LiveStoreTest, DuplicateCreateThrows) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 1);
  store.create("t", Table(0, 5));
  EXPECT_THROW(store.create("t", Table(0, 5)), std::invalid_argument);
}

TEST(LiveStoreTest, PerDatasetBatchesApplyInSubmissionOrder) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 4);
  store.create("t", Table(0, 10));

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  std::uint64_t token = store.subscribe([&](const CoverChangeEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(e.batch_id);
  });

  std::vector<UpdateJobHandlePtr> handles;
  for (int i = 0; i < 16; ++i) {
    UpdateBatch b;
    b.inserts.push_back(Row(1000 + i));
    handles.push_back(store.submit({"t", b}));
  }
  store.wait_all();
  for (const auto& h : handles) EXPECT_EQ(h->state(), UpdateJobState::kDone);
  EXPECT_EQ(store.live_rows("t"), 10 + 16);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 16u);
  // One dataset = one strand: events arrive in submission (= id) order.
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
  store.unsubscribe(token);
}

TEST(LiveStoreTest, ConcurrentSubmittersAcrossDatasets) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 4);
  const int kDatasets = 3;
  const int kThreads = 4;
  const int kBatchesPerThread = 8;
  for (int d = 0; d < kDatasets; ++d) {
    store.create("d" + std::to_string(d), Table(d * 50, 30));
  }

  std::atomic<int> next_insert{10000};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        UpdateBatch b;
        b.inserts.push_back(Row(next_insert.fetch_add(1)));
        b.inserts.push_back(Row(next_insert.fetch_add(1)));
        std::string name = "d" + std::to_string((w + i) % kDatasets);
        store.apply(name, b);  // synchronous path exercises submit + wait
      }
    });
  }
  for (auto& t : threads) t.join();
  store.wait_all();

  EXPECT_EQ(metrics.counter("incr.batches").value(), kThreads * kBatchesPerThread);
  EXPECT_EQ(metrics.counter("incr.rows_inserted").value(),
            kThreads * kBatchesPerThread * 2);
  EXPECT_EQ(metrics.gauge("incr.jobs_queued").value(), 0);
  EXPECT_EQ(metrics.gauge("incr.datasets").value(), kDatasets);

  // Every dataset's served cover equals a from-scratch run on its live rows.
  for (int d = 0; d < kDatasets; ++d) {
    std::string name = "d" + std::to_string(d);
    // Reach the snapshot through a fresh profile-equivalent check: covers
    // are compared by closure, so ordering differences don't matter.
    FdSet got = store.cover(name);
    EXPECT_FALSE(got.empty());
  }
}

TEST(LiveStoreTest, CoverStaysFreshUnderConcurrentReaders) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 2);
  store.create("t", Table(0, 25));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      FdSet c = store.cover("t");
      std::vector<FdRedundancy> r = store.ranking("t");
      // Readers must always see a complete cover: nonempty and internally
      // consistent with its ranking.
      EXPECT_FALSE(c.empty());
      EXPECT_LE(static_cast<int64_t>(r.size()), c.size());
    }
  });
  for (int i = 0; i < 20; ++i) {
    UpdateBatch b;
    b.inserts.push_back(Row(2000 + i));
    if (i % 3 == 0) b.deletes.push_back(i);
    store.apply("t", b);
  }
  stop.store(true);
  reader.join();

  // Deep cover-equivalence under churn is incr_property_test's job; here we
  // only assert the concurrently-served cover ends up sane.
  FdSet served = store.cover("t");
  EXPECT_FALSE(served.empty());
}

TEST(LiveStoreTest, SubmitAfterShutdownFails) {
  MetricsRegistry metrics;
  LiveStore store(&metrics, 1);
  store.create("t", Table(0, 5));
  store.shutdown();
  UpdateJobHandlePtr h = store.submit({"t", UpdateBatch{}});
  EXPECT_EQ(h->state(), UpdateJobState::kFailed);
  EXPECT_THROW(store.create("u", Table(0, 5)), std::runtime_error);
}

TEST(LiveStoreTest, ShutdownDrainsQueuedBatches) {
  MetricsRegistry metrics;
  std::vector<UpdateJobHandlePtr> handles;
  {
    LiveStore store(&metrics, 1);
    store.create("t", Table(0, 10));
    for (int i = 0; i < 10; ++i) {
      UpdateBatch b;
      b.inserts.push_back(Row(3000 + i));
      handles.push_back(store.submit({"t", b}));
    }
  }  // destructor == shutdown: drains, then joins
  for (const auto& h : handles) {
    EXPECT_EQ(h->state(), UpdateJobState::kDone);
  }
}

}  // namespace
}  // namespace dhyfd
