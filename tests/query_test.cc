// Unit tests for src/query/: spec validation, the g3-style removal counter,
// and the engine's epsilon / arity / top-k / column-scope behaviour.
#include "query/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "algo/dhyfd.h"
#include "algo/discovery.h"
#include "algo/tane.h"
#include "partition/partition_ops.h"
#include "query/topk.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::RandomRelation;

std::string CoverString(FdSet fds) {
  fds.sort();
  std::string out;
  for (const Fd& fd : fds.fds) {
    out += fd.to_string();
    out += "\n";
  }
  return out;
}

/// A relation with planted structure so covers are never empty: col2 is a
/// function of col0 and col3 of {col0, col1}; col1/col4 are noise.
Relation StructuredRelation(uint64_t seed, int rows = 60) {
  Random rng(seed);
  std::vector<std::vector<int>> data;
  data.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    int a = i % 8;
    int b = static_cast<int>(rng.next_below(5));
    int c = (a * 3) % 5;
    int d = (a + b) % 4;
    int e = static_cast<int>(rng.next_below(3));
    data.push_back({a, b, c, d, e});
  }
  return testutil::FromValues(data);
}

bool Contains(const FdSet& fds, const Fd& fd) {
  for (const Fd& f : fds.fds) {
    if (f.lhs == fd.lhs && f.rhs == fd.rhs) return true;
  }
  return false;
}

TEST(DiscoveryQueryTest, DefaultSpecIsValid) {
  EXPECT_EQ(DescribeQueryError(DiscoveryQuery{}, 5), "");
  EXPECT_EQ(DescribeQueryError(DiscoveryQuery{}, 0), "");
}

TEST(DiscoveryQueryTest, RejectsBadEpsilon) {
  DiscoveryQuery q;
  q.epsilon = -0.1;
  EXPECT_NE(DescribeQueryError(q, 3), "");
  q.epsilon = 1.5;
  EXPECT_NE(DescribeQueryError(q, 3), "");
  q.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(DescribeQueryError(q, 3), "");
  q.epsilon = 1.0;
  EXPECT_EQ(DescribeQueryError(q, 3), "");
}

TEST(DiscoveryQueryTest, RejectsBadArityAndMode) {
  DiscoveryQuery q;
  q.max_lhs = -1;
  EXPECT_NE(DescribeQueryError(q, 3), "");
  q.max_lhs = static_cast<int>(AttributeSet::kCapacity) + 1;
  EXPECT_NE(DescribeQueryError(q, 3), "");
  q.max_lhs = 2;
  q.ranking_mode = static_cast<RedundancyMode>(99);
  EXPECT_NE(DescribeQueryError(q, 3), "");
}

TEST(DiscoveryQueryTest, RejectsBadColumnScope) {
  DiscoveryQuery q;
  q.include_columns = {0, 7};
  EXPECT_NE(DescribeQueryError(q, 3), "");  // 7 exceeds the schema width
  EXPECT_EQ(DescribeQueryError(q, 0), "");  // width unknown: syntax only
  q.include_columns = {0};
  EXPECT_NE(DescribeQueryError(q, 3), "");  // scope must keep >= 2 columns
  q.include_columns = {0, 1, 2};
  q.exclude_columns = {1, 2};
  EXPECT_NE(DescribeQueryError(q, 3), "");  // excludes shrink it below 2
  q.exclude_columns = {2};
  EXPECT_EQ(DescribeQueryError(q, 3), "");
}

TEST(QueryEngineTest, InvalidSpecThrows) {
  Relation r = RandomRelation(1, 20, 3, 2);
  DiscoveryQuery q;
  q.epsilon = 2.0;
  EXPECT_THROW(QueryEngine().execute(r, q), std::invalid_argument);
}

TEST(ApproxErrorTest, RemovalsHandcrafted) {
  // pi_{col0} = {{0,1,2},{3,4}}; col1 groups inside them: {5,5,6} needs one
  // removal, {7,7} none.
  Relation r = FromValues({{0, 5}, {0, 5}, {0, 6}, {1, 7}, {1, 7}, {2, 8}});
  StrippedPartition pi = BuildAttributePartition(r, 0);
  EXPECT_EQ(ApproxFdRemovals(r, pi, 1), 1);
  // Against the whole relation: one 6-row cluster, the largest col1 group
  // has 2 rows, so 4 removals.
  EXPECT_EQ(ApproxFdRemovals(r, StrippedPartition::whole(r.num_rows()), 1), 4);
  // An exact FD needs zero removals.
  EXPECT_EQ(ApproxFdRemovals(r, BuildAttributePartition(r, 1), 0), 0);
}

TEST(ApproxErrorTest, BudgetRounding) {
  EXPECT_EQ(ApproxRemovalBudget(0, 100), 0);
  EXPECT_EQ(ApproxRemovalBudget(0.1, 100), 10);
  EXPECT_EQ(ApproxRemovalBudget(0.05, 39), 1);  // floor(1.95)
  EXPECT_EQ(ApproxRemovalBudget(0.3, 10), 3);   // exact product survives
  EXPECT_EQ(ApproxRemovalBudget(0.5, 0), 0);
}

TEST(QueryEngineTest, EpsilonAdmitsAlmostHoldingFd) {
  // col0 -> col1 fails only on row 2: e = 1/6. It is absent from the exact
  // cover but enters once epsilon reaches the error.
  Relation r = FromValues({{0, 5}, {0, 5}, {0, 6}, {1, 7}, {1, 7}, {2, 8}});
  Fd almost(AttributeSet{0}, 1);

  QueryResult exact = QueryEngine().execute(r, DiscoveryQuery{});
  EXPECT_FALSE(Contains(exact.cover(), almost));

  DiscoveryQuery q;
  q.epsilon = 0.2;
  QueryResult approx = QueryEngine().execute(r, q);
  EXPECT_TRUE(Contains(approx.cover(), almost));
}

TEST(QueryEngineTest, EpsilonAgreesAcrossAlgorithms) {
  // tane(eps) and dhyfd(eps) implement the same approximate semantics, and
  // the query engine routes to dhyfd when k = 0.
  for (int seed : {3, 11, 29}) {
    Relation r = RandomRelation(seed, 60, 4, 3, 0.1);
    for (double eps : {0.05, 0.2}) {
      TaneOptions topt;
      topt.epsilon = eps;
      DhyfdOptions dopt;
      dopt.epsilon = eps;
      FdSet tane_cover = Tane(topt).discover(r).fds;
      FdSet dhyfd_cover = Dhyfd(dopt).discover(r).fds;
      EXPECT_EQ(CoverString(tane_cover), CoverString(dhyfd_cover))
          << "seed=" << seed << " eps=" << eps;

      DiscoveryQuery q;
      q.epsilon = eps;
      FdSet query_cover = QueryEngine().execute(r, q).cover();
      EXPECT_EQ(CoverString(query_cover), CoverString(tane_cover))
          << "seed=" << seed << " eps=" << eps;
    }
  }
}

TEST(QueryEngineTest, MaxLhsIsAnExactFilter) {
  for (int seed : {5, 17}) {
    Relation r = RandomRelation(seed, 50, 5, 2);
    FdSet full = BruteForceDiscover(r);
    for (int bound : {1, 2, 3}) {
      FdSet expected;
      for (const Fd& fd : full.fds) {
        if (fd.lhs.count() <= bound) expected.add(fd);
      }
      DiscoveryQuery q;
      q.max_lhs = bound;
      FdSet got = QueryEngine().execute(r, q).cover();
      EXPECT_EQ(CoverString(got), CoverString(expected))
          << "seed=" << seed << " bound=" << bound;

      // The top-k lattice obeys the same bound.
      q.top_k = static_cast<std::uint32_t>(full.size()) + 1;
      FdSet topk = QueryEngine().execute(r, q).cover();
      EXPECT_EQ(CoverString(topk), CoverString(expected))
          << "topk seed=" << seed << " bound=" << bound;
    }
  }
}

TEST(QueryEngineTest, TopKReturnsBestRankedPrefix) {
  Relation r = StructuredRelation(23);
  QueryResult full = QueryEngine().execute(r, DiscoveryQuery{});
  ASSERT_GE(full.fds.size(), 3u);
  for (std::uint32_t k : {1u, 2u, 3u}) {
    DiscoveryQuery q;
    q.top_k = k;
    QueryResult got = QueryEngine().execute(r, q);
    ASSERT_EQ(got.fds.size(), k);
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_EQ(got.fds[i].fd.to_string(), full.fds[i].fd.to_string())
          << "k=" << k << " i=" << i;
      EXPECT_EQ(got.fds[i].score, full.fds[i].score);
    }
  }
}

TEST(QueryEngineTest, TopKValidationsShrinkWithK) {
  Relation r = StructuredRelation(41, 120);
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::uint32_t k : {64u, 8u, 2u, 1u}) {
    DiscoveryQuery q;
    q.top_k = k;
    QueryResult res = QueryEngine().execute(r, q);
    EXPECT_LE(res.stats.validations, prev) << "k=" << k;
    prev = res.stats.validations;
  }
}

TEST(QueryEngineTest, ColumnScopeProjectsAndMapsBack) {
  Relation r = StructuredRelation(9, 40);
  DiscoveryQuery q;
  q.include_columns = {0, 2, 4};
  QueryResult res = QueryEngine().execute(r, q);
  AttributeSet scope{0, 2, 4};
  ASSERT_FALSE(res.fds.empty());
  for (const RankedFd& f : res.fds) {
    EXPECT_TRUE((f.fd.lhs - scope).empty()) << f.fd.to_string();
    EXPECT_TRUE((f.fd.rhs - scope).empty()) << f.fd.to_string();
  }
  // The scoped cover equals brute force on the projected relation, with ids
  // mapped back through the scope.
  Relation proj = ProjectRelation(r, {0, 2, 4});
  FdSet expected_proj = BruteForceDiscover(proj);
  FdSet expected;
  const std::vector<AttrId> cols = {0, 2, 4};
  for (const Fd& fd : expected_proj.fds) {
    AttributeSet lhs, rhs;
    fd.lhs.for_each([&](AttrId a) { lhs.set(cols[a]); });
    fd.rhs.for_each([&](AttrId a) { rhs.set(cols[a]); });
    expected.add(Fd(lhs, rhs));
  }
  EXPECT_EQ(CoverString(res.cover()), CoverString(expected));

  // Exclude-based scoping reaches the same place.
  DiscoveryQuery q2;
  q2.exclude_columns = {1, 3};
  FdSet got2 = QueryEngine().execute(r, q2).cover();
  EXPECT_EQ(CoverString(got2), CoverString(expected));
}

TEST(QueryEngineTest, RankedOrderIsDeterministic) {
  Relation r = RandomRelation(13, 60, 5, 2);
  QueryResult a = QueryEngine().execute(r, DiscoveryQuery{});
  QueryResult b = QueryEngine().execute(r, DiscoveryQuery{});
  ASSERT_EQ(a.fds.size(), b.fds.size());
  for (size_t i = 0; i < a.fds.size(); ++i) {
    EXPECT_EQ(a.fds[i].fd.to_string(), b.fds[i].fd.to_string());
    EXPECT_EQ(a.fds[i].score, b.fds[i].score);
  }
  for (size_t i = 1; i < a.fds.size(); ++i) {
    EXPECT_FALSE(RankedFdBetter(a.fds[i], a.fds[i - 1])) << i;
  }
}

}  // namespace
}  // namespace dhyfd
