#include "algo/sampler.h"

#include <gtest/gtest.h>

#include "algo/agree_sets.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::RandomRelation;

std::vector<StrippedPartition> AttrPartitions(const Relation& r) {
  std::vector<StrippedPartition> out;
  for (AttrId a = 0; a < r.num_cols(); ++a) out.push_back(BuildAttributePartition(r, a));
  return out;
}

TEST(SamplerTest, SampledSetsAreGenuineAgreeSets) {
  Relation r = RandomRelation(3, 120, 4, 3);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  std::vector<AttributeSet> all = ComputeAllAgreeSets(r);
  std::vector<AttributeSet> sampled = sampler.initial(3);
  for (const AttributeSet& s : sampled) {
    bool found = false;
    for (const AttributeSet& t : all) {
      if (s == t) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << s.to_string();
  }
}

TEST(SamplerTest, NoDuplicatesAcrossRuns) {
  Relation r = RandomRelation(5, 200, 4, 3);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  std::vector<AttributeSet> w1 = sampler.run(1);
  std::vector<AttributeSet> w2 = sampler.run(2);
  for (const AttributeSet& a : w1) {
    for (const AttributeSet& b : w2) EXPECT_NE(a, b);
  }
}

TEST(SamplerTest, WindowTracksMaximum) {
  Relation r = RandomRelation(7, 50, 3, 2);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  EXPECT_EQ(sampler.window(), 0);
  sampler.run(2);
  EXPECT_EQ(sampler.window(), 2);
  sampler.run(1);
  EXPECT_EQ(sampler.window(), 2);
}

TEST(SamplerTest, EfficiencyDecreasesWithSaturation) {
  Relation r = RandomRelation(11, 300, 3, 2);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  sampler.run(1);
  double e1 = sampler.last_efficiency();
  for (int w = 2; w <= 6; ++w) sampler.run(w);
  double e6 = sampler.last_efficiency();
  EXPECT_LE(e6, e1);
}

TEST(SamplerTest, PairsComparedAccumulates) {
  Relation r = RandomRelation(13, 100, 3, 2);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  sampler.run(1);
  int64_t p1 = sampler.pairs_compared();
  EXPECT_GT(p1, 0);
  sampler.run(2);
  EXPECT_GT(sampler.pairs_compared(), p1);
}

TEST(SamplerTest, HandlesKeyColumns) {
  // All-unique columns have empty partitions: nothing to sample, no crash.
  Relation r = testutil::FromValues({{0, 10}, {1, 11}, {2, 12}});
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  EXPECT_TRUE(sampler.initial(3).empty());
}

TEST(SamplerTest, FindsLargeAgreeSetsOnDuplicateHeavyData) {
  // Rows duplicated except the last column: sampler should find the
  // near-full agree set quickly.
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({i % 5, i % 5, i});
  Relation r = testutil::FromValues(rows);
  auto partitions = AttrPartitions(r);
  NeighborhoodSampler sampler(r, partitions);
  std::vector<AttributeSet> sampled = sampler.initial(1);
  bool found = false;
  for (const AttributeSet& s : sampled) {
    if (s == (AttributeSet{0, 1})) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dhyfd
