// The embedded HTTP observability endpoint: parser unit tests, then the
// live routes (/metrics, /healthz, /slowlog, /tracez) served from the same
// poll loop as the RPC protocol. The negative-path tests all end by talking
// to the server again — a malformed HTTP request must cost one HTTP
// connection, never the loop.
#include "net/http.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "datagen/benchmark_data.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/prometheus.h"
#include "relation/csv.h"

namespace dhyfd::net {
namespace {

TEST(HttpParseTest, NeedsMoreUntilBlankLine) {
  HttpRequest req;
  EXPECT_EQ(ParseHttpRequest("", &req, 1024), HttpParseStatus::kNeedMore);
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.0\r\n", &req, 1024),
            HttpParseStatus::kNeedMore);
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.0\r\nHost: x\r\n", &req, 1024),
            HttpParseStatus::kNeedMore);
}

TEST(HttpParseTest, ParsesRequestLineCrlfAndBareLf) {
  HttpRequest req;
  ASSERT_EQ(ParseHttpRequest("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n", &req,
                             1024),
            HttpParseStatus::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(req.version, "HTTP/1.0");

  // curl-style HTTP/1.1 and tolerant bare-LF termination both parse.
  ASSERT_EQ(ParseHttpRequest("GET /slowlog?n=5 HTTP/1.1\n\n", &req, 1024),
            HttpParseStatus::kOk);
  EXPECT_EQ(req.target, "/slowlog?n=5");
  EXPECT_EQ(req.version, "HTTP/1.1");
}

TEST(HttpParseTest, MalformedRequestLinesAreBad) {
  HttpRequest req;
  // No spaces at all.
  EXPECT_EQ(ParseHttpRequest("NOT-HTTP\r\n\r\n", &req, 1024),
            HttpParseStatus::kBad);
  // Missing version token.
  EXPECT_EQ(ParseHttpRequest("GET /metrics\r\n\r\n", &req, 1024),
            HttpParseStatus::kBad);
  // Extra token.
  EXPECT_EQ(ParseHttpRequest("GET /a b HTTP/1.0\r\n\r\n", &req, 1024),
            HttpParseStatus::kBad);
  // Target must be origin-form.
  EXPECT_EQ(ParseHttpRequest("GET metrics HTTP/1.0\r\n\r\n", &req, 1024),
            HttpParseStatus::kBad);
  // Version must be HTTP/x.y.
  EXPECT_EQ(ParseHttpRequest("GET /metrics SPDY/9\r\n\r\n", &req, 1024),
            HttpParseStatus::kBad);
}

TEST(HttpParseTest, OversizedHeadIsTooLarge) {
  HttpRequest req;
  std::string no_terminator(300, 'A');
  EXPECT_EQ(ParseHttpRequest(no_terminator, &req, 128),
            HttpParseStatus::kTooLarge);
  // A complete head that only fits past the cap is rejected too.
  std::string huge = "GET /metrics HTTP/1.0\r\nX: " + std::string(200, 'y') +
                     "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(huge, &req, 128), HttpParseStatus::kTooLarge);
}

TEST(HttpParseTest, RenderedResponseHasFramingHeaders) {
  std::vector<std::uint8_t> raw =
      RenderHttpResponse(200, "text/plain; charset=utf-8", "ok\n");
  std::string text(raw.begin(), raw.end());
  EXPECT_EQ(text.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(text.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 3), "ok\n");
}

std::string DemoCsv(int rows = 120) {
  return WriteCsvString(GenerateBenchmark("abalone", rows));
}

/// Service stack with the HTTP endpoint enabled.
struct Stack {
  explicit Stack(ServerOptions options = {}) {
    options.http_enabled = true;
    scheduler = std::make_unique<JobScheduler>(&datasets, &metrics,
                                               SchedulerOptions{.num_threads = 2});
    live = std::make_unique<LiveStore>(&metrics, 2);
    server = std::make_unique<ProfilingServer>(scheduler.get(), live.get(),
                                               &datasets, &metrics, options);
    server->start();
  }
  ~Stack() {
    server->shutdown();
    live->shutdown();
    scheduler->shutdown();
  }

  BlockingClient connect(const std::string& name = "test-client") {
    return BlockingClient("127.0.0.1", server->port(), name,
                          /*timeout_seconds=*/30);
  }

  MetricsRegistry metrics;
  DatasetRegistry datasets{&metrics};
  std::unique_ptr<JobScheduler> scheduler;
  std::unique_ptr<LiveStore> live;
  std::unique_ptr<ProfilingServer> server;
};

/// Sends raw bytes to the HTTP port and reads until the server closes.
std::string HttpExchange(std::uint16_t port, const std::string& request) {
  Socket s = ConnectTcp("127.0.0.1", port);
  s.set_recv_timeout(30);
  s.write_all(reinterpret_cast<const std::uint8_t*>(request.data()),
              request.size());
  std::string out;
  std::uint8_t byte = 0;
  try {
    while (s.read_exact(&byte, 1)) out.push_back(static_cast<char>(byte));
  } catch (const std::exception&) {
    // A reset after the response was flushed still leaves `out` complete
    // enough to assert on; an empty `out` fails the assertions below.
  }
  return out;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  return HttpExchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(NetHttpEndpointTest, HealthzAnswersOk) {
  Stack stack;
  ASSERT_NE(stack.server->http_port(), 0);
  std::string resp = HttpGet(stack.server->http_port(), "/healthz");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("\r\n\r\nok\n"), std::string::npos);
}

TEST(NetHttpEndpointTest, MetricsIsPrometheusExposition) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  client.submit_discovery(submit);

  std::string resp = HttpGet(stack.server->http_port(), "/metrics");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // The body is the same exposition the in-process renderer produces:
  // per-RPC histograms, process gauges, and the legacy request histogram.
  EXPECT_NE(resp.find("# TYPE dhyfd_net_rpc_submit_discovery_ok_seconds "
                      "histogram"),
            std::string::npos);
  EXPECT_NE(resp.find("dhyfd_net_rpc_requests"), std::string::npos);
  EXPECT_NE(resp.find("dhyfd_net_request_seconds"), std::string::npos);
  EXPECT_NE(resp.find("dhyfd_process_open_fds"), std::string::npos);
  EXPECT_NE(resp.find("dhyfd_net_http_connections"), std::string::npos);
}

TEST(NetHttpEndpointTest, SlowlogAndTracezCarryRequestCosts) {
  Stack stack;
  BlockingClient client = stack.connect("tenant-a");
  client.register_dataset("aba", DemoCsv(), /*live=*/true);
  SubmitDiscoveryMsg submit;
  submit.dataset = "aba";
  client.submit_discovery(submit);
  client.query_cover("aba", 3);

  std::string slowlog = HttpGet(stack.server->http_port(), "/slowlog");
  EXPECT_EQ(slowlog.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(slowlog.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(slowlog.find("\"slowest\":["), std::string::npos);
  EXPECT_NE(slowlog.find("\"type\":\"submit_discovery\""), std::string::npos);
  EXPECT_NE(slowlog.find("\"tenant\":\"tenant-a\""), std::string::npos);
  EXPECT_NE(slowlog.find("\"tenants\":{"), std::string::npos);
  // The discovery actually validated FDs, so its ledger is non-zero.
  EXPECT_NE(slowlog.find("\"validations\":"), std::string::npos);
  EXPECT_EQ(slowlog.find("\"validations\":0,\"partitions_built\":0,"
                         "\"cache_hits\":0,\"cache_misses\":0,"
                         "\"bytes_streamed\":0"),
            std::string::npos)
      << "every recorded request has an all-zero ledger:\n" << slowlog;

  std::string tracez = HttpGet(stack.server->http_port(), "/tracez");
  EXPECT_EQ(tracez.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(tracez.find("\"recent\":["), std::string::npos);
  EXPECT_NE(tracez.find("\"type\":\"query_cover\""), std::string::npos);
}

TEST(NetHttpEndpointTest, NegativeRequestsAnswerWithoutKillingTheLoop) {
  ServerOptions options;
  options.max_http_request_bytes = 128;
  Stack stack(options);
  std::uint16_t port = stack.server->http_port();

  EXPECT_EQ(HttpGet(port, "/nope").rfind("HTTP/1.0 404 ", 0), 0u);
  EXPECT_EQ(HttpExchange(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405 ", 0),
            0u);
  EXPECT_EQ(HttpExchange(port, "NOT-HTTP\r\n\r\n").rfind("HTTP/1.0 400 ", 0),
            0u);
  EXPECT_EQ(HttpExchange(port, std::string(300, 'A')).rfind("HTTP/1.0 431 ", 0),
            0u);

  // The loop survived all four: HTTP still answers and RPC still works.
  EXPECT_EQ(HttpGet(port, "/healthz").rfind("HTTP/1.0 200 ", 0), 0u);
  BlockingClient client = stack.connect();
  client.ping();
  // /nope, POST and /healthz parsed; the 400 and 431 count as bad.
  EXPECT_GE(stack.metrics.counter("net.http.requests").value(), 3);
  EXPECT_GE(stack.metrics.counter("net.http.bad_requests").value(), 2);
}

TEST(NetHttpEndpointTest, QueryStringIsIgnoredForRouting) {
  Stack stack;
  std::string resp = HttpGet(stack.server->http_port(), "/healthz?verbose=1");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
}

TEST(NetHttpEndpointTest, HealthzFlipsTo503WhileDraining) {
  Stack stack;
  BlockingClient client = stack.connect();
  client.register_dataset("aba", DemoCsv(), /*live=*/false);

  // Hold the schedulers' workers hostage so a client-submitted discovery
  // stays pending; shutdown() then cannot finish draining until released.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  int entered = 0;
  bool release = false;
  ProfileJob blocker;
  blocker.dataset = "aba";
  blocker.options.stage_hook = [&](ProfileStage, double) {
    std::unique_lock<std::mutex> lock(gate_mu);
    ++entered;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  };
  JobHandlePtr b1 = stack.scheduler->submit(blocker);
  JobHandlePtr b2 = stack.scheduler->submit(blocker);
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return entered == 2; });
  }

  std::thread rpc([&] {
    SubmitDiscoveryMsg submit;
    submit.dataset = "aba";
    try {
      client.submit_discovery(submit);
    } catch (const std::exception&) {
      // Drain may close the connection after delivering the result; either
      // way the job was pending long enough for the 503 check below.
    }
  });
  // The pending job is visible to the server before shutdown begins once
  // the discovery request has been admitted; poll until it is in flight.
  for (int i = 0; i < 200 && stack.metrics.counter("net.requests").value() < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::thread closer([&] { stack.server->shutdown(); });

  // While draining, the listener stays open and /healthz reports 503.
  std::string resp;
  for (int i = 0; i < 400; ++i) {
    resp = HttpGet(stack.server->http_port(), "/healthz");
    if (resp.rfind("HTTP/1.0 503 ", 0) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(resp.rfind("HTTP/1.0 503 ", 0), 0u) << resp;
  EXPECT_NE(resp.find("draining\n"), std::string::npos);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
    gate_cv.notify_all();
  }
  b1->wait();
  b2->wait();
  rpc.join();
  closer.join();
}

TEST(NetHttpEndpointTest, DisabledByDefault) {
  // The plain RPC-only server must not open an HTTP port.
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  LiveStore live(&metrics, 1);
  ProfilingServer server(&scheduler, &live, &datasets, &metrics, {});
  server.start();
  EXPECT_EQ(server.http_port(), 0);
  server.shutdown();
  live.shutdown();
  scheduler.shutdown();
}

}  // namespace
}  // namespace dhyfd::net
