#include "algo/ddm.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

TEST(DdmTest, PrecomputesAttributePartitions) {
  Relation r = FromValues({{0, 1}, {0, 1}, {1, 2}});
  Ddm ddm(r);
  EXPECT_EQ(ddm.attribute_partition(0).support(), 2);
  EXPECT_EQ(ddm.attribute_support(0), 2);
  EXPECT_EQ(ddm.attribute_partition(1).support(), 2);
}

TEST(DdmTest, StaticIdsMapToSingletonAttrs) {
  Relation r = FromValues({{0, 1}, {0, 1}});
  Ddm ddm(r);
  EXPECT_EQ(ddm.attrs_for_id(0), AttributeSet{0});
  EXPECT_EQ(ddm.attrs_for_id(1), AttributeSet{1});
  EXPECT_EQ(&ddm.partition_for_id(1), &ddm.attribute_partition(1));
}

TEST(DdmTest, UpdateBuildsDynamicPartitions) {
  Relation r = RandomRelation(3, 60, 4, 3);
  Ddm ddm(r);
  ExtendedFdTree tree(4);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{2});
  tree.add_fd(AttributeSet{0, 1, 3}, AttributeSet{2});
  std::vector<ExtendedFdTree::Node*> level2 = tree.level_nodes(2);
  ASSERT_EQ(level2.size(), 1u);  // node 1 under node 0
  tree.set_controlled_level(2);
  ddm.update(level2, tree);
  EXPECT_EQ(ddm.dynamic_entries(), 1);
  // The node's id now references pi_{0,1}.
  ExtendedFdTree::Node* node = level2[0];
  EXPECT_GE(node->id, r.num_cols());
  EXPECT_EQ(ddm.attrs_for_id(node->id), (AttributeSet{0, 1}));
  StrippedPartition direct = BuildPartition(r, AttributeSet{0, 1});
  StrippedPartition dyn = ddm.partition_for_id(node->id);
  dyn.normalize();
  direct.normalize();
  EXPECT_EQ(dyn.to_string(), direct.to_string());
}

TEST(DdmTest, UpdatePropagatesIdsToDescendants) {
  Relation r = RandomRelation(5, 40, 5, 3);
  Ddm ddm(r);
  ExtendedFdTree tree(5);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 2, 4}, AttributeSet{1});
  std::vector<ExtendedFdTree::Node*> level2 = tree.level_nodes(2);
  ASSERT_EQ(level2.size(), 1u);
  tree.set_controlled_level(2);
  ddm.update(level2, tree);
  // The depth-3 descendant must carry the same dynamic id.
  std::vector<ExtendedFdTree::Node*> level3 = tree.level_nodes(3);
  ASSERT_EQ(level3.size(), 1u);
  EXPECT_EQ(level3[0]->id, level2[0]->id);
}

TEST(DdmTest, UpdateResetsUnrelatedIds) {
  Relation r = RandomRelation(7, 40, 6, 3);
  Ddm ddm(r);
  ExtendedFdTree tree(6);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{5});
  tree.add_fd(AttributeSet{2, 3}, AttributeSet{5});
  auto level2 = tree.level_nodes(2);
  ASSERT_EQ(level2.size(), 2u);
  tree.set_controlled_level(2);
  // First update with both nodes, then a second update with only one: the
  // other node's id must fall back to its default, not dangle.
  ddm.update(level2, tree);
  std::vector<ExtendedFdTree::Node*> just_one = {level2[0]};
  ddm.update(just_one, tree);
  EXPECT_EQ(ddm.dynamic_entries(), 1);
  EXPECT_GE(level2[0]->id, 6);
  EXPECT_EQ(level2[1]->id, level2[1]->attr);  // reset to default
}

TEST(DdmTest, SecondUpdateRefinesFromDynamic) {
  Relation r = RandomRelation(11, 80, 5, 2);
  Ddm ddm(r);
  ExtendedFdTree tree(5);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 1, 2}, AttributeSet{4});
  auto level2 = tree.level_nodes(2);
  tree.set_controlled_level(2);
  ddm.update(level2, tree);
  auto level3 = tree.level_nodes(3);
  ASSERT_EQ(level3.size(), 1u);
  tree.set_controlled_level(3);
  ddm.update(level3, tree);
  EXPECT_EQ(ddm.attrs_for_id(level3[0]->id), (AttributeSet{0, 1, 2}));
  StrippedPartition dyn = ddm.partition_for_id(level3[0]->id);
  StrippedPartition direct = BuildPartition(r, AttributeSet{0, 1, 2});
  dyn.normalize();
  direct.normalize();
  EXPECT_EQ(dyn.to_string(), direct.to_string());
}

TEST(DdmTest, MemoryBytesIncludesDynamic) {
  Relation r = RandomRelation(13, 100, 4, 2);
  Ddm ddm(r);
  size_t before = ddm.memory_bytes();
  ExtendedFdTree tree(4);
  tree.set_controlled_level(1);
  tree.add_fd(AttributeSet{0, 1}, AttributeSet{3});
  auto level2 = tree.level_nodes(2);
  tree.set_controlled_level(2);
  ddm.update(level2, tree);
  EXPECT_GE(ddm.memory_bytes(), before);
}

}  // namespace
}  // namespace dhyfd
