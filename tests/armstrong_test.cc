#include "fd/armstrong.h"

#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "fd/closure.h"
#include "fd/cover.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

TEST(ArmstrongTest, MaximalSetsOfChain) {
  // A -> B, B -> C over {A,B,C}. max(A): maximal closed sets without A in
  // their closure: {B,C}. max(B): {C} (A determines B). max(C): {} is
  // closed... maximal without C: {A,B} closes to ABC (contains C) -> only
  // sets avoiding B and A: {} -> actually {C}? no — C not allowed in
  // max(C)? A set M with C not in closure(M): closure({A}) = ABC has C.
  // closure({}) = {} lacks C. So max(C) = {} is the only candidate? No:
  // maximal is the largest such set; {B} closes to BC (has C). So max(C)
  // = { {} }? {A} has C, {B} has C -> indeed only {}.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 2));
  auto max_a = MaximalSets(fds, 0, 3);
  ASSERT_EQ(max_a.size(), 1u);
  EXPECT_EQ(max_a[0], (AttributeSet{1, 2}));
  auto max_b = MaximalSets(fds, 1, 3);
  ASSERT_EQ(max_b.size(), 1u);
  EXPECT_EQ(max_b[0], AttributeSet{2});
  auto max_c = MaximalSets(fds, 2, 3);
  ASSERT_EQ(max_c.size(), 1u);
  EXPECT_TRUE(max_c[0].empty());
}

TEST(ArmstrongTest, MaximalSetsAreClosedAndAvoidAttr) {
  Random rng(7);
  FdSet fds;
  for (int i = 0; i < 8; ++i) {
    AttributeSet lhs;
    lhs.set(static_cast<AttrId>(rng.next_below(6)));
    if (rng.next_bool(0.5)) lhs.set(static_cast<AttrId>(rng.next_below(6)));
    AttrId rhs = static_cast<AttrId>(rng.next_below(6));
    if (!lhs.test(rhs)) fds.add(Fd(lhs, rhs));
  }
  ClosureEngine engine(fds, 6);
  for (AttrId a = 0; a < 6; ++a) {
    for (const AttributeSet& m : MaximalSets(fds, a, 6)) {
      EXPECT_FALSE(engine.closure(m).test(a)) << a << " " << m.to_string();
      EXPECT_EQ(engine.closure(m), m) << "max sets must be closed";
      // Maximality: adding any outside attribute pulls a into the closure.
      (AttributeSet::full(6) - m - AttributeSet::single(a)).for_each([&](AttrId b) {
        AttributeSet bigger = m;
        bigger.set(b);
        EXPECT_TRUE(engine.closure(bigger).test(a))
            << a << " " << m.to_string() << "+" << b;
      });
    }
  }
}

TEST(ArmstrongTest, ConstantAttributeHasNoMaxSets) {
  FdSet fds;
  fds.add(Fd(AttributeSet{}, 0));
  EXPECT_TRUE(MaximalSets(fds, 0, 3).empty());
}

TEST(ArmstrongTest, UnderivableAttributeHasFullMaxSet) {
  FdSet fds;  // no FDs at all
  auto max_sets = MaximalSets(fds, 1, 3);
  ASSERT_EQ(max_sets.size(), 1u);
  EXPECT_EQ(max_sets[0], (AttributeSet{0, 2}));
}

TEST(ArmstrongTest, GeneratedRelationSatisfiesExactlyTheCover) {
  // The killer property: discovery on the Armstrong relation returns a
  // cover equivalent to the input.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1, 2}, 3));
  Relation r = BuildArmstrongRelation(fds, 4);
  FdSet discovered = BruteForceDiscover(r);
  EXPECT_TRUE(CoversEquivalent(fds, discovered, 4))
      << testutil::CoverDifference(fds, discovered, 4);
}

TEST(ArmstrongTest, RoundTripOnRandomCovers) {
  for (int seed = 1; seed <= 10; ++seed) {
    Random rng(seed * 53);
    int n = 4 + static_cast<int>(rng.next_below(3));
    FdSet fds;
    int count = 2 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < count; ++i) {
      AttributeSet lhs;
      int k = 1 + static_cast<int>(rng.next_below(2));
      for (int j = 0; j < k; ++j) lhs.set(static_cast<AttrId>(rng.next_below(n)));
      AttrId rhs = static_cast<AttrId>(rng.next_below(n));
      if (!lhs.test(rhs)) fds.add(Fd(lhs, rhs));
    }
    Relation r = BuildArmstrongRelation(fds, n);
    FdSet discovered = BruteForceDiscover(r);
    EXPECT_TRUE(CoversEquivalent(fds, discovered, n))
        << "seed=" << seed << ": "
        << testutil::CoverDifference(fds, discovered, n);
    // All six algorithms must agree too (this doubles as an end-to-end
    // oracle for the whole discovery stack).
    DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
    EXPECT_TRUE(CoversEquivalent(fds, res.fds, n)) << "seed=" << seed;
  }
}

TEST(ArmstrongTest, RelationIsSmall) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  Relation r = BuildArmstrongRelation(fds, 3);
  // 1 reference row + one row per distinct max set; for this cover that is
  // a handful, not exponential.
  EXPECT_LE(r.num_rows(), 8);
  EXPECT_GE(r.num_rows(), 2);
}

TEST(ArmstrongTest, EmptyCoverGivesAllDistinctColumns) {
  FdSet fds;
  Relation r = BuildArmstrongRelation(fds, 3);
  FdSet discovered = BruteForceDiscover(r);
  EXPECT_TRUE(CoversEquivalent(fds, discovered, 3));
}

}  // namespace
}  // namespace dhyfd
