// Failure-injection / adversarial-input tests across the public surface:
// degenerate relations, all-null columns, single-column schemas, huge
// domains, and profiler behavior on them.
#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "core/profiler.h"
#include "fd/cover.h"
#include "ranking/redundancy.h"
#include "relation/encoder.h"
#include "test_util.h"

namespace dhyfd {
namespace {

RawTable TableOf(std::vector<std::string> header,
                 std::vector<std::vector<std::string>> rows) {
  RawTable t;
  t.header = std::move(header);
  t.rows = std::move(rows);
  return t;
}

TEST(RobustnessTest, AllNullColumn) {
  RawTable t = TableOf({"a", "b"}, {{"", "1"}, {"", "2"}, {"", "3"}});
  for (NullSemantics sem :
       {NullSemantics::kNullEqualsNull, NullSemantics::kNullNotEqualsNull}) {
    EncodedRelation e = EncodeRelation(t, sem);
    for (const std::string& name : AllDiscoveryNames()) {
      DiscoveryResult res = MakeDiscovery(name)->discover(e.relation);
      FdSet expected = BruteForceDiscover(e.relation);
      EXPECT_EQ(res.fds.size(), expected.size())
          << name << " sem=" << static_cast<int>(sem);
    }
  }
  // Under null = null the all-null column is constant: {} -> a must hold.
  EncodedRelation eq = EncodeRelation(t, NullSemantics::kNullEqualsNull);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(eq.relation);
  bool constant_a = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd.lhs.empty() && fd.rhs.test(0)) constant_a = true;
  }
  EXPECT_TRUE(constant_a);
}

TEST(RobustnessTest, SingleColumnRelation) {
  Relation r = testutil::FromValues({{0}, {1}, {0}, {2}});
  for (const std::string& name : AllDiscoveryNames()) {
    DiscoveryResult res = MakeDiscovery(name)->discover(r);
    EXPECT_EQ(res.fds.size(), 0) << name;  // non-constant, nothing to find
  }
  Relation constant = testutil::FromValues({{5}, {5}});
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(constant);
  ASSERT_EQ(res.fds.size(), 1);
  EXPECT_TRUE(res.fds.fds[0].lhs.empty());
}

TEST(RobustnessTest, AllColumnsIdentical) {
  Relation r = testutil::FromValues({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  FdSet expected = BruteForceDiscover(r);  // every column determines others
  for (const std::string& name : AllDiscoveryNames()) {
    DiscoveryResult res = MakeDiscovery(name)->discover(r);
    EXPECT_EQ(testutil::CoverDifference(expected, res.fds, 3), "") << name;
  }
  EXPECT_EQ(expected.size(), 6);  // a->b, a->c, b->a, b->c, c->a, c->b
}

TEST(RobustnessTest, AllRowsIdentical) {
  Relation r = testutil::FromValues({{1, 2}, {1, 2}, {1, 2}});
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  EXPECT_EQ(res.fds.size(), 2);  // both columns constant
  // Ranking: every occurrence is redundant under the constants.
  FdSet canonical = CanonicalCover(res.fds, 2);
  DatasetRedundancy d = ComputeDatasetRedundancy(r, canonical);
  EXPECT_EQ(d.red_plus0, 6);
}

TEST(RobustnessTest, WideSchemaManyConstantColumns) {
  std::vector<std::vector<int>> rows(3, std::vector<int>(40, 7));
  rows[1][39] = 8;  // one non-constant column
  Relation r = testutil::FromValues(rows);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  // 39 constants plus {39} is a... no pair of rows agrees on 39 except
  // rows 0 and 2 (both 7): so {} -> c39 fails, and c39's FDs depend on
  // pairs. Just assert exactness.
  FdSet expected = BruteForceDiscover(r.fragment(3, 20));
  DiscoveryResult scoped = MakeDiscovery("dhyfd")->discover(r.fragment(3, 20));
  EXPECT_EQ(scoped.fds.size(), expected.size());
}

TEST(RobustnessTest, ProfilerOnDegenerateInputs) {
  // Header-only table: zero rows.
  RawTable empty = TableOf({"a", "b"}, {});
  ProfileReport rep = Profiler().profile(empty);
  EXPECT_EQ(rep.dataset_redundancy.num_values, 0);
  // One row: everything constant, everything redundant? A single occurrence
  // has no second row to witness redundancy.
  RawTable one = TableOf({"a", "b"}, {{"x", "y"}});
  ProfileReport rep1 = Profiler().profile(one);
  EXPECT_EQ(rep1.left_reduced.size(), 2);
  EXPECT_EQ(rep1.dataset_redundancy.red_plus0, 0);
}

TEST(RobustnessTest, HugeDomainColumn) {
  // A key-like column with a huge dense domain exercises the refinement
  // scratch sizing.
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 500; ++i) rows.push_back({i, i % 3});
  Relation r = testutil::FromValues(rows);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  bool key_fd = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs.test(1)) key_fd = true;
  }
  EXPECT_TRUE(key_fd);
}

TEST(RobustnessTest, CanonicalCoverOfUnsatisfiableInputs) {
  // Cover utilities must not choke on trivial or self-referential FDs.
  FdSet weird;
  weird.add(Fd(AttributeSet{0}, 0));                  // trivial
  weird.add(Fd(AttributeSet{0, 1}, AttributeSet{1}));  // trivial (subset RHS)
  weird.add(Fd(AttributeSet{2}, 3));
  FdSet lr = LeftReduce(weird, 4);
  EXPECT_EQ(lr.size(), 1);  // only the real FD survives
  EXPECT_EQ(lr.fds[0], Fd(AttributeSet{2}, 3));
}

TEST(RobustnessTest, RankingOnCoverWithForeignFds) {
  // Ranking a cover containing an FD that does NOT hold is well-defined
  // under Vincent's definition (counts witnesses of the LHS pattern).
  Relation r = testutil::FromValues({{0, 1}, {0, 2}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 1));  // violated FD
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 2);  // both rows share the LHS value
}

}  // namespace
}  // namespace dhyfd
