#include "fd/keys.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/discovery.h"
#include "fd/closure.h"
#include "test_util.h"

namespace dhyfd {
namespace {

FdSet TextbookCover() {
  // R = {A,B,C,D}; A -> B, B -> C. Keys: {A, D}.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 2));
  return fds;
}

TEST(KeysTest, IsSuperkey) {
  FdSet cover = TextbookCover();
  EXPECT_TRUE(IsSuperkey(cover, AttributeSet{0, 3}, 4));
  EXPECT_TRUE(IsSuperkey(cover, AttributeSet{0, 1, 2, 3}, 4));
  EXPECT_FALSE(IsSuperkey(cover, AttributeSet{0}, 4));
  EXPECT_FALSE(IsSuperkey(cover, AttributeSet{1, 3}, 4));
}

TEST(KeysTest, SingleKey) {
  std::vector<AttributeSet> keys = FindCandidateKeys(TextbookCover(), 4);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttributeSet{0, 3}));
}

TEST(KeysTest, MultipleKeysViaCycle) {
  // A -> B, B -> A: both {A} and {B} are keys of R = {A,B}.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 0));
  std::vector<AttributeSet> keys = FindCandidateKeys(fds, 2);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_NE(std::find(keys.begin(), keys.end(), AttributeSet{0}), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), AttributeSet{1}), keys.end());
}

TEST(KeysTest, KeysAreMinimalAndSuperkeys) {
  Relation r = testutil::RandomRelation(21, 60, 5, 3);
  FdSet cover = BruteForceDiscover(r);
  std::vector<AttributeSet> keys = FindCandidateKeys(cover, 5);
  ASSERT_FALSE(keys.empty());
  for (const AttributeSet& key : keys) {
    EXPECT_TRUE(IsSuperkey(cover, key, 5));
    key.for_each([&](AttrId a) {
      AttributeSet smaller = key;
      smaller.reset(a);
      EXPECT_FALSE(IsSuperkey(cover, smaller, 5)) << key.to_string();
    });
  }
  // Pairwise incomparable.
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(keys[i].is_subset_of(keys[j]));
      }
    }
  }
}

TEST(KeysTest, EmptyCoverWholeSchemaIsKey) {
  FdSet empty;
  std::vector<AttributeSet> keys = FindCandidateKeys(empty, 3);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet::full(3));
}

TEST(KeysTest, ConstantColumnsLeaveKey) {
  // {} -> A: A belongs to no key; key of R = {A,B} is {B}.
  FdSet fds;
  fds.add(Fd(AttributeSet{}, 0));
  std::vector<AttributeSet> keys = FindCandidateKeys(fds, 2);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet{1});
}

TEST(KeysTest, MandatoryAttributes) {
  FdSet cover = TextbookCover();
  // D (3) and A (0) never appear on a RHS.
  EXPECT_EQ(MandatoryKeyAttributes(cover, 4), (AttributeSet{0, 3}));
}

TEST(KeysTest, MaxKeysCapsSearch) {
  // n cyclic attributes: n keys; cap at 2.
  FdSet fds;
  for (int i = 0; i < 6; ++i) fds.add(Fd(AttributeSet{i}, (i + 1) % 6));
  std::vector<AttributeSet> keys = FindCandidateKeys(fds, 6, 2);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(KeysTest, KeyColumnFoundOnData) {
  Relation r = testutil::FromValues({{0, 5, 1}, {1, 5, 1}, {2, 6, 2}, {3, 6, 3}});
  FdSet cover = BruteForceDiscover(r);
  std::vector<AttributeSet> keys = FindCandidateKeys(cover, 3);
  bool has_col0 = false;
  for (const AttributeSet& k : keys) {
    if (k == AttributeSet{0}) has_col0 = true;
  }
  EXPECT_TRUE(has_col0);
}

}  // namespace
}  // namespace dhyfd
