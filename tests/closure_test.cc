#include "fd/closure.h"

#include <gtest/gtest.h>

namespace dhyfd {
namespace {

FdSet TextbookFds() {
  // A -> B, B -> C, CD -> E.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 2));
  fds.add(Fd(AttributeSet{2, 3}, 4));
  return fds;
}

TEST(ClosureTest, TransitiveChain) {
  ClosureEngine e(TextbookFds(), 5);
  EXPECT_EQ(e.closure(AttributeSet{0}), (AttributeSet{0, 1, 2}));
  EXPECT_EQ(e.closure(AttributeSet{0, 3}), (AttributeSet{0, 1, 2, 3, 4}));
  EXPECT_EQ(e.closure(AttributeSet{3}), AttributeSet{3});
}

TEST(ClosureTest, EmptyLhsFdsFireUnconditionally) {
  FdSet fds;
  fds.add(Fd(AttributeSet{}, 0));    // constant column
  fds.add(Fd(AttributeSet{0}, 1));
  ClosureEngine e(fds, 3);
  EXPECT_EQ(e.closure(AttributeSet{}), (AttributeSet{0, 1}));
  EXPECT_EQ(e.closure(AttributeSet{2}), (AttributeSet{0, 1, 2}));
}

TEST(ClosureTest, Implies) {
  ClosureEngine e(TextbookFds(), 5);
  EXPECT_TRUE(e.implies(AttributeSet{0}, AttributeSet{2}));
  EXPECT_TRUE(e.implies(AttributeSet{0, 3}, AttributeSet{4}));
  EXPECT_FALSE(e.implies(AttributeSet{1}, AttributeSet{0}));
  // Reflexivity.
  EXPECT_TRUE(e.implies(AttributeSet{3}, AttributeSet{3}));
}

TEST(ClosureTest, SkipFdDisablesIt) {
  ClosureEngine e(TextbookFds(), 5);
  // Skipping B -> C (index 1) breaks the chain from A.
  EXPECT_EQ(e.closure(AttributeSet{0}, 1), (AttributeSet{0, 1}));
}

TEST(ClosureTest, AliveMaskFiltersFds) {
  ClosureEngine e(TextbookFds(), 5);
  std::vector<uint8_t> alive = {1, 0, 1};
  EXPECT_EQ(e.closure(AttributeSet{0}, -1, &alive), (AttributeSet{0, 1}));
  alive = {1, 1, 1};
  EXPECT_EQ(e.closure(AttributeSet{0}, -1, &alive), (AttributeSet{0, 1, 2}));
}

TEST(ClosureTest, MultiAttributeRhs) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, AttributeSet{1, 2, 3}));
  ClosureEngine e(fds, 4);
  EXPECT_EQ(e.closure(AttributeSet{0}), AttributeSet::full(4));
}

TEST(ClosureTest, OneShotHelpers) {
  FdSet fds = TextbookFds();
  EXPECT_EQ(Closure(fds, AttributeSet{0}, 5), (AttributeSet{0, 1, 2}));
  EXPECT_TRUE(Implies(fds, Fd(AttributeSet{0}, 2), 5));
  EXPECT_FALSE(Implies(fds, Fd(AttributeSet{4}, 0), 5));
}

TEST(ClosureTest, CoversEquivalent) {
  FdSet a = TextbookFds();
  // Equivalent cover: adds the implied A -> C explicitly.
  FdSet b = TextbookFds();
  b.add(Fd(AttributeSet{0}, 2));
  EXPECT_TRUE(CoversEquivalent(a, b, 5));
  // Dropping B -> C changes the implied set.
  FdSet c;
  c.add(Fd(AttributeSet{0}, 1));
  c.add(Fd(AttributeSet{2, 3}, 4));
  EXPECT_FALSE(CoversEquivalent(a, c, 5));
}

TEST(ClosureTest, RepeatedCallsShareEngineState) {
  ClosureEngine e(TextbookFds(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e.closure(AttributeSet{0}), (AttributeSet{0, 1, 2}));
    EXPECT_EQ(e.closure(AttributeSet{3}), AttributeSet{3});
  }
}

TEST(ClosureTest, EmptyFdSet) {
  FdSet fds;
  ClosureEngine e(fds, 4);
  EXPECT_EQ(e.closure(AttributeSet{1, 2}), (AttributeSet{1, 2}));
}

}  // namespace
}  // namespace dhyfd
