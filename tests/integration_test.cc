// End-to-end integration tests over the synthetic benchmark analogs:
// cross-algorithm agreement, cover invariants, and the full profiler
// pipeline on down-scaled versions of the paper's data sets.
#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "fd/cover.h"
#include "ranking/redundancy.h"
#include "relation/encoder.h"
#include "test_util.h"

namespace dhyfd {
namespace {

Relation SmallAnalog(const std::string& name, int rows) {
  return EncodeRelation(GenerateBenchmark(name, rows)).relation;
}

class AnalogAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalogAgreement, AllAlgorithmsProduceTheSameCover) {
  // Narrow analogs at tiny row counts: every algorithm must agree exactly.
  Relation r = SmallAnalog(GetParam(), 120);
  DiscoveryResult reference = MakeDiscovery("fdep2")->discover(r);
  for (const std::string& algo : AllDiscoveryNames()) {
    if (algo == "fdep2") continue;
    DiscoveryResult res = MakeDiscovery(algo)->discover(r);
    EXPECT_EQ(res.fds.size(), reference.fds.size()) << algo;
    EXPECT_EQ(testutil::CoverDifference(reference.fds, res.fds, r.num_cols()), "")
        << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(Analogs, AnalogAgreement,
                         ::testing::Values("iris", "balance", "chess", "abalone",
                                           "nursery", "breast", "bridges", "echo",
                                           "adult", "ncvoter", "lineitem", "pdbx",
                                           "weather"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(IntegrationTest, EveryDiscoveredFdHoldsOnNcvoterAnalog) {
  Relation r = SmallAnalog("ncvoter", 300);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  for (const Fd& fd : res.fds.fds) {
    ASSERT_TRUE(r.satisfies(fd.lhs, fd.rhs.first())) << fd.to_string(r.schema());
  }
}

TEST(IntegrationTest, CanonicalCoverInvariantsOnAnalogs) {
  for (const char* name : {"ncvoter", "bridges", "echo", "abalone", "breast"}) {
    Relation r = SmallAnalog(name, 200);
    DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
    FdSet can = CanonicalCover(res.fds, r.num_cols());
    EXPECT_TRUE(CoversEquivalent(res.fds, can, r.num_cols())) << name;
    EXPECT_TRUE(IsNonRedundant(can, r.num_cols())) << name;
    EXPECT_TRUE(HasUniqueLhs(can)) << name;
    EXPECT_LE(can.size(), res.fds.size()) << name;
  }
}

TEST(IntegrationTest, CanonicalCoverShrinksNcvoterLikeThePaper) {
  // Paper Table III: ncvoter's canonical cover is ~24% of the left-reduced
  // one. The analog must show a clearly sub-60% reduction too.
  Relation r = SmallAnalog("ncvoter", 1000);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  CoverStats stats = ComputeCoverStats(res.fds, r.num_cols());
  EXPECT_GT(stats.left_reduced_count, 100);
  EXPECT_LT(stats.percent_size, 60.0);
}

TEST(IntegrationTest, ConstantStateColumnRanksTop) {
  // Paper sigma_1: {} -> state causes one redundant value per row.
  Relation r = SmallAnalog("ncvoter", 500);
  ProfileOptions opt;
  ProfileReport report = Profiler(opt).profile(r);
  AttrId state = report.schema.index_of("state");
  ASSERT_GE(state, 0);
  bool found = false;
  for (size_t i = 0; i < 3 && i < report.ranking.size(); ++i) {
    const FdRedundancy& red = report.ranking[i];
    if (red.fd.lhs.empty() && red.fd.rhs.test(state)) {
      EXPECT_EQ(red.with_nulls, 500);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "{} -> state must be among the top-ranked FDs";
}

TEST(IntegrationTest, NullSemanticsChangesNcvoterCovers) {
  RawTable t = GenerateBenchmark("ncvoter", 400);
  Relation eq = EncodeRelation(t, NullSemantics::kNullEqualsNull).relation;
  Relation neq = EncodeRelation(t, NullSemantics::kNullNotEqualsNull).relation;
  DiscoveryResult res_eq = MakeDiscovery("dhyfd")->discover(eq);
  DiscoveryResult res_neq = MakeDiscovery("dhyfd")->discover(neq);
  // ncvoter has heavily-null name_suffix/name_prefix columns; the two
  // semantics cannot produce identical covers.
  EXPECT_NE(res_eq.fds.size(), res_neq.fds.size());
}

TEST(IntegrationTest, FragmentScalingIsMonotoneInWork) {
  Relation full = SmallAnalog("weather", 2000);
  DiscoveryResult small = MakeDiscovery("dhyfd")->discover(full.fragment(500, 18));
  DiscoveryResult large = MakeDiscovery("dhyfd")->discover(full);
  EXPECT_GE(large.stats.pairs_compared, small.stats.pairs_compared);
}

TEST(IntegrationTest, RedundancyPercentagesAreSane) {
  for (const char* name : {"ncvoter", "bridges", "hepatitis"}) {
    Relation r = SmallAnalog(name, 150);
    DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
    FdSet can = CanonicalCover(res.fds, r.num_cols());
    DatasetRedundancy d = ComputeDatasetRedundancy(r, can);
    EXPECT_GE(d.red_plus0, d.red) << name;
    EXPECT_LE(d.red_plus0, d.num_values) << name;
    EXPECT_GE(d.percent_red(), 0.0) << name;
    EXPECT_LE(d.percent_red_plus0(), 100.0) << name;
  }
}

TEST(IntegrationTest, TimeLimitedRunsReportPartialOutput) {
  Relation r = SmallAnalog("horse", 368);
  DiscoveryResult res = MakeDiscovery("dhyfd", 0.05)->discover(r);
  // horse takes seconds; 50 ms must time out, and whatever FDs were
  // validated are returned rather than discarded.
  EXPECT_TRUE(res.stats.timed_out);
}

}  // namespace
}  // namespace dhyfd
