#include "util/deadline.h"

#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "test_util.h"
#include "util/timer.h"

namespace dhyfd {
namespace {

TEST(DeadlineTest, ZeroMeansNoLimit) {
  Deadline d(0);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, NegativeMeansNoLimit) {
  Deadline d(-1);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d(0.01);
  Timer timer;
  while (timer.seconds() < 0.05) {
  }
  EXPECT_TRUE(d.expired());
  // Expiry is sticky.
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, FarFutureStaysOpen) {
  Deadline d(3600);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_FALSE(d.expired());
  }
}

class AlgorithmDeadlineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmDeadlineTest, TinyBudgetFlagsTimeout) {
  // A relation with real FD structure so every algorithm has work to abort:
  // derived columns plant FDs; random ones give agree-set volume.
  Random rng(99);
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 2500; ++i) {
    int a = static_cast<int>(rng.next_below(40));
    int b = static_cast<int>(rng.next_below(12));
    int e = static_cast<int>(rng.next_below(6));
    rows.push_back({a, b, (3 * a + b) % 31, (a + 7 * b + e) % 23, e,
                    static_cast<int>(rng.next_below(4)),
                    static_cast<int>(rng.next_below(5)),
                    static_cast<int>(rng.next_below(3))});
  }
  Relation r = testutil::FromValues(rows);
  auto algo = MakeDiscovery(GetParam(), 1e-6);
  DiscoveryResult res = algo->discover(r);
  EXPECT_TRUE(res.stats.timed_out) << GetParam();
}

TEST_P(AlgorithmDeadlineTest, GenerousBudgetCompletes) {
  Relation r = testutil::RandomRelation(7, 60, 5, 3);
  auto algo = MakeDiscovery(GetParam(), 3600);
  DiscoveryResult res = algo->discover(r);
  EXPECT_FALSE(res.stats.timed_out) << GetParam();
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(res.fds.size(), expected.size()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmDeadlineTest,
                         ::testing::ValuesIn(AllDiscoveryNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace dhyfd
