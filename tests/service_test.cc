#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "query/engine.h"
#include "query/profile_query.h"
#include "util/cancellation.h"
#include "util/deadline.h"

namespace dhyfd {
namespace {

RawTable DemoTable(const std::string& name = "abalone", int rows = 300) {
  return GenerateBenchmark(name, rows);
}

std::string CoverString(const FdSet& cover) {
  std::string out;
  for (const Fd& fd : cover.fds) out += fd.to_string() + "\n";
  return out;
}

TEST(DatasetRegistryTest, EncodesOncePerSemantics) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());

  auto r1 = datasets.get("t", NullSemantics::kNullEqualsNull);
  auto r2 = datasets.get("t", NullSemantics::kNullEqualsNull);
  EXPECT_EQ(r1.get(), r2.get());  // same cached relation
  auto r3 = datasets.get("t", NullSemantics::kNullNotEqualsNull);
  EXPECT_NE(r1.get(), r3.get());  // distinct per semantics

  EXPECT_EQ(metrics.counter("dataset.cache_misses").value(), 2);
  EXPECT_EQ(metrics.counter("dataset.cache_hits").value(), 1);
}

TEST(DatasetRegistryTest, UnknownNameThrows) {
  DatasetRegistry datasets;
  EXPECT_THROW(datasets.get("nope", NullSemantics::kNullEqualsNull),
               std::out_of_range);
}

TEST(DatasetRegistryTest, MissingFileFailsThenRetries) {
  DatasetRegistry datasets;
  datasets.add_csv_file("f", "/nonexistent/path.csv");
  EXPECT_THROW(datasets.get("f", NullSemantics::kNullEqualsNull),
               std::exception);
  // The failed slot was dropped: a second get re-attempts (and fails again
  // rather than returning a poisoned cached future).
  EXPECT_THROW(datasets.get("f", NullSemantics::kNullEqualsNull),
               std::exception);
}

TEST(DatasetRegistryTest, ConcurrentGettersShareOneEncode) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable("ncvoter", 800));

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Relation>> results(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&datasets, &results, i] {
      results[i] = datasets.get("t", NullSemantics::kNullEqualsNull);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(results[0].get(), results[i].get());
  EXPECT_EQ(metrics.counter("dataset.cache_misses").value(), 1);
}

TEST(MetricsTest, HistogramStatsAndSnapshot) {
  MetricsRegistry metrics;
  metrics.counter("c").inc(3);
  metrics.gauge("g").set(7);
  Histogram& h = metrics.histogram("h");
  h.record(0.001);
  h.record(0.02);
  h.record(0.3);
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.sum(), 0.321, 1e-9);
  EXPECT_NEAR(h.min(), 0.001, 1e-9);
  EXPECT_NEAR(h.max(), 0.3, 1e-9);
  EXPECT_GE(h.quantile(0.5), 0.001);
  EXPECT_LE(h.quantile(0.5), 0.3);
  std::string snap = metrics.snapshot();
  EXPECT_NE(snap.find("counter c 3"), std::string::npos);
  EXPECT_NE(snap.find("gauge g 7"), std::string::npos);
  EXPECT_NE(snap.find("histogram h count=3"), std::string::npos);
}

TEST(ServiceTest, ConcurrentJobsMatchSerialProfiler) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("abalone", DemoTable("abalone", 300));
  datasets.add_table("ncvoter", DemoTable("ncvoter", 300));

  // Serial references.
  std::vector<std::string> algos = {"dhyfd", "tane", "hyfd", "fdep"};
  std::vector<ProfileReport> expected;
  for (const std::string dataset : {"abalone", "ncvoter"}) {
    auto rel = datasets.get(dataset, NullSemantics::kNullEqualsNull);
    for (const std::string& algo : algos) {
      ProfileOptions opt;
      opt.algorithm = algo;
      expected.push_back(Profiler(opt).profile(*rel));
    }
  }

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 4});
  std::vector<JobHandlePtr> handles;
  for (const std::string dataset : {"abalone", "ncvoter"}) {
    for (const std::string& algo : algos) {
      ProfileJob job;
      job.dataset = dataset;
      job.options.algorithm = algo;
      handles.push_back(scheduler.submit(job));
    }
  }
  scheduler.wait_all();

  ASSERT_EQ(handles.size(), expected.size());
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(handles[i]->state(), JobState::kDone) << handles[i]->error();
    const ProfileReport& got = handles[i]->report();
    EXPECT_EQ(CoverString(got.left_reduced), CoverString(expected[i].left_reduced));
    EXPECT_EQ(CoverString(got.canonical), CoverString(expected[i].canonical));
    EXPECT_EQ(got.ranking.size(), expected[i].ranking.size());
    EXPECT_GT(got.timings.discover_seconds, 0);
  }
  EXPECT_EQ(metrics.counter("jobs.completed").value(), 8);
  EXPECT_EQ(metrics.counter("jobs.submitted").value(), 8);
  EXPECT_EQ(metrics.gauge("jobs.running").value(), 0);
  EXPECT_GE(metrics.histogram("stage.discover_seconds").count(), 8);
}

TEST(ServiceTest, QueryJobsRunThroughScheduler) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("aba", DemoTable("abalone", 200));
  auto rel = datasets.get("aba", NullSemantics::kNullEqualsNull);

  // Serial reference: the query engine run directly.
  DiscoveryQuery query;
  query.top_k = 4;
  QueryResult expected = QueryEngine().execute(*rel, query);

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});
  ProfileJob job;
  job.dataset = "aba";
  auto slot = BindQueryToProfile(job.options, query);
  job.options.compute_canonical = false;
  job.options.compute_ranking = false;
  JobHandlePtr handle = scheduler.submit(job);
  scheduler.wait_all();

  ASSERT_EQ(handle->state(), JobState::kDone) << handle->error();
  const ProfileReport& got = handle->report();
  ASSERT_TRUE(slot->result.has_value());
  ASSERT_EQ(slot->result->fds.size(), expected.fds.size());
  for (size_t i = 0; i < expected.fds.size(); ++i) {
    EXPECT_EQ(slot->result->fds[i].fd.to_string(),
              expected.fds[i].fd.to_string());
    EXPECT_EQ(slot->result->fds[i].score, expected.fds[i].score);
  }
  // The ranked answer is also surfaced through the generic cover fields.
  EXPECT_EQ(CoverString(got.left_reduced),
            CoverString(expected.cover()));

  // An invalid spec fails the job with a diagnosable error.
  ProfileJob bad;
  bad.dataset = "aba";
  DiscoveryQuery bad_query;
  bad_query.epsilon = 3.0;
  auto bad_slot = BindQueryToProfile(bad.options, bad_query);
  JobScheduler scheduler2(&datasets, &metrics, {.num_threads = 1});
  JobHandlePtr bad_handle = scheduler2.submit(bad);
  scheduler2.wait_all();
  EXPECT_EQ(bad_handle->state(), JobState::kFailed);
  EXPECT_NE(bad_handle->error().find("invalid discovery query"),
            std::string::npos);
}

TEST(ServiceTest, CancelQueuedJobNeverRuns) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  // Occupy the single worker long enough to cancel the queued job behind it.
  std::atomic<bool> release{false};
  ProfileJob blocker;
  blocker.dataset = "t";
  blocker.options.stage_hook = [&release](ProfileStage, double) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  JobHandlePtr first = scheduler.submit(blocker);

  ProfileJob queued;
  queued.dataset = "t";
  JobHandlePtr second = scheduler.submit(queued);
  second->cancel();
  release.store(true);

  scheduler.wait_all();
  EXPECT_EQ(first->state(), JobState::kDone);
  EXPECT_EQ(second->state(), JobState::kCancelled);
  EXPECT_EQ(second->run_seconds(), 0);  // never picked up
  EXPECT_THROW(second->report(), std::runtime_error);
  EXPECT_EQ(metrics.counter("jobs.cancelled").value(), 1);
}

TEST(ServiceTest, CancelRunningJobStopsEarly) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  // Big enough that fdep's O(rows^2) pair scan takes well over a second.
  datasets.add_table("big", DemoTable("ncvoter", 6000));

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  ProfileJob job;
  job.dataset = "big";
  job.options.algorithm = "fdep";
  JobHandlePtr handle = scheduler.submit(job);

  // Wait for it to actually start, then cancel mid-run.
  while (handle->state() == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  handle->cancel();
  handle->wait();

  EXPECT_EQ(handle->state(), JobState::kCancelled);
  // Stopped early: nowhere near a full fdep run over 6000^2 row pairs.
  EXPECT_LT(handle->run_seconds(), 30.0);
  const ProfileReport& report = handle->report();  // partial but present
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(metrics.counter("jobs.cancelled").value(), 1);
  EXPECT_EQ(metrics.counter("jobs.completed").value(), 0);
}

TEST(ServiceTest, PerJobTimeLimitProducesPartialResult) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("big", DemoTable("ncvoter", 6000));

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  ProfileJob job;
  job.dataset = "big";
  job.options.algorithm = "fdep";
  job.time_limit_seconds = 0.02;
  JobHandlePtr handle = scheduler.submit(job);
  handle->wait();

  ASSERT_EQ(handle->state(), JobState::kDone) << handle->error();
  EXPECT_TRUE(handle->report().discovery.stats.timed_out);
}

TEST(ServiceTest, MaxPendingRejectsInsteadOfBlocking) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());

  JobScheduler scheduler(&datasets, &metrics,
                         {.num_threads = 1, .max_pending = 2});
  // Occupy the single worker so submissions pile up as pending.
  std::atomic<bool> release{false};
  ProfileJob blocker;
  blocker.dataset = "t";
  blocker.options.stage_hook = [&release](ProfileStage, double) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  JobHandlePtr running = scheduler.submit(blocker);
  while (running->state() == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ProfileJob job;
  job.dataset = "t";
  JobHandlePtr q1 = scheduler.submit(job);
  JobHandlePtr q2 = scheduler.submit(job);
  EXPECT_FALSE(q1->rejected());
  EXPECT_FALSE(q2->rejected());

  // Third pending submission hits the bound: immediately kFailed with
  // rejected() set, no blocking, no handle left un-terminal.
  JobHandlePtr refused = scheduler.submit(job);
  EXPECT_TRUE(refused->rejected());
  EXPECT_EQ(refused->state(), JobState::kFailed);
  EXPECT_NE(refused->error().find("queue full"), std::string::npos);
  EXPECT_THROW(refused->report(), std::runtime_error);
  EXPECT_EQ(metrics.counter("jobs.rejected").value(), 1);

  release.store(true);
  scheduler.wait_all();
  // The accepted jobs were untouched by the rejection.
  EXPECT_EQ(q1->state(), JobState::kDone);
  EXPECT_EQ(q2->state(), JobState::kDone);
  EXPECT_EQ(metrics.counter("jobs.completed").value(), 3);
  // Capacity freed: new submissions are accepted again.
  JobHandlePtr after = scheduler.submit(job);
  EXPECT_FALSE(after->rejected());
  after->wait();
  EXPECT_EQ(after->state(), JobState::kDone);
}

TEST(ServiceTest, PriorityOrderOnSingleWorker) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());
  // Pre-encode so job runtimes don't include the one-time encode.
  datasets.get("t", NullSemantics::kNullEqualsNull);

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  std::mutex mu;
  std::vector<int> started;  // priorities in execution order
  std::atomic<bool> release{false};

  ProfileJob blocker;
  blocker.dataset = "t";
  blocker.options.stage_hook = [&release](ProfileStage, double) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  scheduler.submit(blocker);

  // Submitted low-priority first; the high-priority job must still run first
  // once the blocker releases the lone worker.
  for (int priority : {0, 1, 5, 3}) {
    ProfileJob job;
    job.dataset = "t";
    job.priority = priority;
    job.options.stage_hook = [&mu, &started, priority](ProfileStage stage, double) {
      if (stage == ProfileStage::kDiscover) {
        std::lock_guard<std::mutex> lock(mu);
        started.push_back(priority);
      }
    };
    scheduler.submit(job);
  }
  release.store(true);
  scheduler.wait_all();

  ASSERT_EQ(started.size(), 4u);
  EXPECT_EQ(started, (std::vector<int>{5, 3, 1, 0}));
}

TEST(ServiceTest, BadAlgorithmAndBadDatasetFailCleanly) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});

  ProfileJob bad_algo;
  bad_algo.dataset = "t";
  bad_algo.options.algorithm = "no_such_algorithm";
  JobHandlePtr h1 = scheduler.submit(bad_algo);

  ProfileJob bad_dataset;
  bad_dataset.dataset = "no_such_dataset";
  JobHandlePtr h2 = scheduler.submit(bad_dataset);

  scheduler.wait_all();
  EXPECT_EQ(h1->state(), JobState::kFailed);
  EXPECT_NE(h1->error().find("no_such_algorithm"), std::string::npos);
  EXPECT_EQ(h2->state(), JobState::kFailed);
  EXPECT_NE(h2->error().find("no_such_dataset"), std::string::npos);
  EXPECT_THROW(h1->report(), std::runtime_error);
  EXPECT_EQ(metrics.counter("jobs.failed").value(), 2);
}

TEST(ServiceTest, SubmitAfterShutdownFailsFast) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());
  JobScheduler scheduler(&datasets, &metrics, {.num_threads = 1});
  scheduler.shutdown();
  ProfileJob job;
  job.dataset = "t";
  JobHandlePtr handle = scheduler.submit(job);
  EXPECT_EQ(handle->state(), JobState::kFailed);
  EXPECT_NE(handle->error().find("shut down"), std::string::npos);
}

TEST(ServiceTest, ShutdownDrainsQueuedJobs) {
  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  datasets.add_table("t", DemoTable());
  std::vector<JobHandlePtr> handles;
  {
    JobScheduler scheduler(&datasets, &metrics, {.num_threads = 2});
    for (int i = 0; i < 12; ++i) {
      ProfileJob job;
      job.dataset = "t";
      handles.push_back(scheduler.submit(job));
    }
  }  // destructor == shutdown: must run everything queued
  for (const JobHandlePtr& handle : handles) {
    EXPECT_EQ(handle->state(), JobState::kDone) << handle->error();
  }
  EXPECT_EQ(metrics.counter("jobs.completed").value(), 12);
}

TEST(ServiceTest, StageTimingsReportedInSummary) {
  ProfileOptions options;
  ProfileReport report = Profiler(options).profile(DemoTable("abalone", 200));
  EXPECT_GT(report.timings.encode_seconds, 0);
  EXPECT_GT(report.timings.discover_seconds, 0);
  EXPECT_GT(report.timings.canonical_seconds, 0);
  EXPECT_GT(report.timings.ranking_seconds, 0);
  EXPECT_GE(report.timings.total_seconds(), report.timings.discover_seconds);
  EXPECT_NE(report.summary().find("stage timings:"), std::string::npos);
}

TEST(ServiceTest, CancelScopeMakesDeadlineFire) {
  CancelToken token;
  CancelScope scope(&token);
  Deadline unlimited(0);
  EXPECT_FALSE(unlimited.expired());
  token.cancel();
  EXPECT_TRUE(unlimited.expired());
}

}  // namespace
}  // namespace dhyfd
