// Deeper induction scenarios on both FD-tree flavors: chains of non-FDs,
// interleavings, and equivalence of classic vs synergized induction
// results. These pin down the invariants DHyFD's main loop relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/agree_sets.h"
#include "fdtree/extended_fd_tree.h"
#include "fdtree/fd_tree.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

// Applies the same random non-FD stream to a classic tree (per-attribute)
// and an extended tree (synergized); both must converge to the same FD set.
TEST(InductionEquivalenceTest, ClassicAndSynergizedConverge) {
  for (int seed = 1; seed <= 12; ++seed) {
    Random rng(seed * 7919);
    const int m = 6;
    const AttributeSet all = AttributeSet::full(m);
    std::vector<AttributeSet> non_fds;
    int count = 3 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < count; ++i) {
      AttributeSet x;
      for (int a = 0; a < m; ++a) {
        if (rng.next_bool(0.45)) x.set(a);
      }
      if (x.count() < m) non_fds.push_back(x);
    }

    FdTree classic(m);
    for (AttrId a = 0; a < m; ++a) classic.add(AttributeSet(), a);
    ExtendedFdTree extended(m);
    extended.init_root_fd(all);

    for (const AttributeSet& x : non_fds) {
      (all - x).for_each([&](AttrId a) { classic.induct(x, a); });
      extended.induct(x, all - x);
    }

    FdSet from_classic = classic.collect();
    FdSet from_extended = extended.collect();
    from_classic.sort();
    from_extended.sort();
    ASSERT_EQ(from_classic.size(), from_extended.with_singleton_rhs().size())
        << "seed=" << seed;
    FdSet ext_singles = from_extended.with_singleton_rhs();
    ext_singles.sort();
    for (int64_t i = 0; i < from_classic.size(); ++i) {
      EXPECT_EQ(from_classic.fds[i], ext_singles.fds[i]) << "seed=" << seed;
    }
  }
}

// The surviving FDs are exactly those not refuted by any processed non-FD,
// and they are pairwise minimal.
TEST(InductionEquivalenceTest, SurvivorsAreMinimalAndUnrefuted) {
  Random rng(4242);
  const int m = 7;
  const AttributeSet all = AttributeSet::full(m);
  std::vector<AttributeSet> non_fds;
  for (int i = 0; i < 20; ++i) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (rng.next_bool(0.5)) x.set(a);
    }
    if (x.count() < m) non_fds.push_back(x);
  }
  ExtendedFdTree tree(m);
  tree.init_root_fd(all);
  for (const AttributeSet& x : non_fds) tree.induct(x, all - x);

  FdSet fds = tree.collect().with_singleton_rhs();
  for (const Fd& fd : fds.fds) {
    for (const AttributeSet& x : non_fds) {
      bool refuted = fd.lhs.is_subset_of(x) && !x.test(fd.rhs.first());
      EXPECT_FALSE(refuted) << fd.to_string() << " vs " << x.to_string();
    }
  }
  // Pairwise minimality for equal RHS.
  for (const Fd& a : fds.fds) {
    for (const Fd& b : fds.fds) {
      if (a.rhs == b.rhs && a.lhs != b.lhs) {
        EXPECT_FALSE(a.lhs.is_subset_of(b.lhs))
            << a.to_string() << " generalizes " << b.to_string();
      }
    }
  }
}

// Order independence: applying the same non-FD set in different orders must
// give the same final tree content.
TEST(InductionEquivalenceTest, OrderIndependentFixpoint) {
  Random rng(777);
  const int m = 6;
  const AttributeSet all = AttributeSet::full(m);
  std::vector<AttributeSet> non_fds;
  for (int i = 0; i < 10; ++i) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (rng.next_bool(0.4)) x.set(a);
    }
    if (x.count() < m) non_fds.push_back(x);
  }
  auto run = [&](std::vector<AttributeSet> order) {
    ExtendedFdTree tree(m);
    tree.init_root_fd(all);
    for (const AttributeSet& x : order) tree.induct(x, all - x);
    FdSet fds = tree.collect().with_singleton_rhs();
    fds.sort();
    return fds;
  };
  FdSet forward = run(non_fds);
  std::vector<AttributeSet> reversed(non_fds.rbegin(), non_fds.rend());
  FdSet backward = run(reversed);
  SortBySizeDescending(non_fds);
  FdSet sorted_first = run(non_fds);
  ASSERT_EQ(forward.size(), backward.size());
  ASSERT_EQ(forward.size(), sorted_first.size());
  for (int64_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward.fds[i], backward.fds[i]);
    EXPECT_EQ(forward.fds[i], sorted_first.fds[i]);
  }
}

// Re-applying a non-FD is a no-op (idempotence).
TEST(InductionEquivalenceTest, Idempotent) {
  const int m = 5;
  const AttributeSet all = AttributeSet::full(m);
  ExtendedFdTree tree(m);
  tree.init_root_fd(all);
  AttributeSet x{0, 2};
  tree.induct(x, all - x);
  FdSet once = tree.collect().with_singleton_rhs();
  once.sort();
  tree.induct(x, all - x);
  FdSet twice = tree.collect().with_singleton_rhs();
  twice.sort();
  ASSERT_EQ(once.size(), twice.size());
  for (int64_t i = 0; i < once.size(); ++i) EXPECT_EQ(once.fds[i], twice.fds[i]);
}

// Node count and FD count stay consistent through heavy churn.
TEST(InductionEquivalenceTest, CountersStayConsistent) {
  Random rng(31337);
  const int m = 8;
  const AttributeSet all = AttributeSet::full(m);
  ExtendedFdTree tree(m);
  tree.init_root_fd(all);
  for (int i = 0; i < 40; ++i) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (rng.next_bool(0.5)) x.set(a);
    }
    if (x.count() == m) continue;
    tree.induct(x, all - x);
    EXPECT_EQ(tree.total_fd_count(),
              static_cast<int64_t>(tree.collect().with_singleton_rhs().size()));
    EXPECT_GE(tree.node_count(), 1u);
    EXPECT_LE(tree.depth(), m);
  }
}

}  // namespace
}  // namespace dhyfd
