#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dhyfd {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100);
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.shutdown();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ShutdownUnderLoadDrainsQueue) {
  // Many short tasks still queued when shutdown starts: every one must run
  // exactly once, and shutdown must not hang.
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRefused) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));
  EXPECT_EQ(pool.tasks_executed(), 0);
}

TEST(ThreadPoolTest, DestructorJoinsWorkers) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // ~ThreadPool must finish all 20 before returning
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, BoundedQueueTrySubmitRefusesWhenFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  // Occupy the single worker so queued tasks pile up.
  pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Wait until the worker has dequeued the blocker (queue drained to 0).
  while (pool.queue_depth() > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));  // queue full
  release.store(true);
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(), 3);
}

TEST(ThreadPoolTest, BoundedQueueSubmitBlocksThenProceeds) {
  ThreadPool pool(1, /*max_queue=*/1);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (pool.queue_depth() > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.submit([&done] { done.fetch_add(1); });  // fills the queue
  // This submit must block until the blocker finishes, then succeed.
  std::thread producer([&pool, &done] {
    EXPECT_TRUE(pool.submit([&done] { done.fetch_add(1); }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(done.load(), 0);  // still blocked behind the busy worker
  release.store(true);
  producer.join();
  pool.shutdown();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsAreCapturedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("task boom"); });
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 10);  // workers survived the throwing tasks
  EXPECT_EQ(pool.exceptions_caught(), 10);
  EXPECT_EQ(pool.first_exception_message(), "task boom");
  EXPECT_EQ(pool.tasks_executed(), 20);
}

TEST(ThreadPoolTest, CustomExceptionHandlerReceivesException) {
  ThreadPool pool(1);
  std::atomic<int> handled{0};
  std::string message;
  pool.set_exception_handler([&handled, &message](std::exception_ptr e) {
    handled.fetch_add(1);
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      message = ex.what();
    }
  });
  pool.submit([] { throw std::runtime_error("custom"); });
  pool.shutdown();
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(message, "custom");
  EXPECT_EQ(pool.exceptions_caught(), 0);  // default handler bypassed
}

TEST(ThreadPoolTest, ManyProducersManyConsumers) {
  ThreadPool pool(4, /*max_queue=*/8);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.shutdown();
  EXPECT_EQ(count.load(), 400);
}

}  // namespace
}  // namespace dhyfd
