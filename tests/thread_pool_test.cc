#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/cost_ledger.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace dhyfd {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100);
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.shutdown();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ShutdownUnderLoadDrainsQueue) {
  // Many short tasks still queued when shutdown starts: every one must run
  // exactly once, and shutdown must not hang.
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRefused) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));
  EXPECT_EQ(pool.tasks_executed(), 0);
}

TEST(ThreadPoolTest, DestructorJoinsWorkers) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // ~ThreadPool must finish all 20 before returning
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, BoundedQueueTrySubmitRefusesWhenFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  // Occupy the single worker so queued tasks pile up.
  pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Wait until the worker has dequeued the blocker (queue drained to 0).
  while (pool.queue_depth() > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));  // queue full
  release.store(true);
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(), 3);
}

TEST(ThreadPoolTest, BoundedQueueSubmitBlocksThenProceeds) {
  ThreadPool pool(1, /*max_queue=*/1);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (pool.queue_depth() > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.submit([&done] { done.fetch_add(1); });  // fills the queue
  // This submit must block until the blocker finishes, then succeed.
  std::thread producer([&pool, &done] {
    EXPECT_TRUE(pool.submit([&done] { done.fetch_add(1); }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(done.load(), 0);  // still blocked behind the busy worker
  release.store(true);
  producer.join();
  pool.shutdown();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsAreCapturedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("task boom"); });
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 10);  // workers survived the throwing tasks
  EXPECT_EQ(pool.exceptions_caught(), 10);
  EXPECT_EQ(pool.first_exception_message(), "task boom");
  EXPECT_EQ(pool.tasks_executed(), 20);
}

TEST(ThreadPoolTest, CustomExceptionHandlerReceivesException) {
  ThreadPool pool(1);
  std::atomic<int> handled{0};
  std::string message;
  pool.set_exception_handler([&handled, &message](std::exception_ptr e) {
    handled.fetch_add(1);
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      message = ex.what();
    }
  });
  pool.submit([] { throw std::runtime_error("custom"); });
  pool.shutdown();
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(message, "custom");
  EXPECT_EQ(pool.exceptions_caught(), 0);  // default handler bypassed
}

TEST(ThreadPoolTest, ManyProducersManyConsumers) {
  ThreadPool pool(4, /*max_queue=*/8);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.shutdown();
  EXPECT_EQ(count.load(), 400);
}

// ------------------------------------------------------- run_shards et al.

TEST(ThreadPoolShardTest, ShardRangePartitionsExactly) {
  // Every index lands in exactly one shard, shards are contiguous, and the
  // first n % shards shards carry the remainder.
  for (std::size_t n : {1u, 2u, 7u, 8u, 100u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u}) {
      if (shards > n) continue;
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        auto [begin, end] = ThreadPool::ShardRange(n, shards, s);
        EXPECT_EQ(begin, prev_end) << "n=" << n << " shards=" << shards;
        EXPECT_LE(end - begin, n / shards + 1);
        EXPECT_GE(end - begin, n / shards);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolShardTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  // Plain ints are safe here because shard ranges are disjoint; were the
  // chunking ever to hand an index to two shards, TSan would flag the race.
  std::vector<int> visits(kN, 0);
  pool.parallel_for(kN, 4, [&visits](std::size_t, std::size_t b,
                                     std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++visits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i], 1);
}

TEST(ThreadPoolShardTest, ParallelForChunkingIsDegreeDeterministic) {
  // The (shard, begin, end) triples seen at degree P are a pure function of
  // (n, P) — this is what makes parallel covers bit-identical: the merge
  // concatenates per-shard slices whose boundaries never move between runs.
  ThreadPool pool(4);
  auto collect = [&pool](std::size_t n, int par) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        std::min<std::size_t>(n, par));
    Mutex mu;
    pool.parallel_for(n, par, [&](std::size_t s, std::size_t b,
                                  std::size_t e) {
      MutexLock lock(&mu);
      ranges[s] = {b, e};
    });
    return ranges;
  };
  EXPECT_EQ(collect(103, 4), collect(103, 4));
  EXPECT_EQ(collect(103, 1),
            (std::vector<std::pair<std::size_t, std::size_t>>{{0, 103}}));
}

TEST(ThreadPoolShardTest, RunShardsSequentialWhenDegreeOne) {
  // parallelism <= 1 must enlist no helpers: shards run on the caller, in
  // order, so a degree-1 run is exactly the sequential code path.
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.run_shards(1, 5, [&order](std::size_t s) { order.push_back(s); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.tasks_executed(), 0);  // no helper tickets were queued
}

TEST(ThreadPoolShardTest, RunShardsRethrowsFirstShardError) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_shards(4, 16,
                      [](std::size_t s) {
                        if (s == 3) throw std::runtime_error("shard boom");
                      }),
      std::runtime_error);
  // The pool survives: a later batch still runs to completion.
  std::atomic<int> count{0};
  pool.run_shards(4, 8, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolShardTest, NestedRunShardsFromWorkerDoesNotDeadlock) {
  // A pool task fanning out over the same (fully busy) pool must complete:
  // the inner run_shards caller drains every shard itself when no worker is
  // idle. This is the scheduler's shape — jobs run on pool workers and each
  // job's discovery shards fan out over the same pool.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_done{0};
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(pool.submit([&pool, &inner_total, &outer_done] {
      pool.run_shards(2, 6, [&inner_total](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        inner_total.fetch_add(1);
      });
      outer_done.fetch_add(1);
    }));
  }
  pool.shutdown();
  EXPECT_EQ(outer_done.load(), 4);
  EXPECT_EQ(inner_total.load(), 24);
}

TEST(ThreadPoolShardTest, TraceContextReachesEveryShard) {
  // Shards observe the caller's trace id whether they ran on the caller or
  // on a helper (helper tickets are wrapped by CaptureTraceContext).
  ThreadPool pool(4);
  constexpr std::uint64_t kTraceId = 7777;
  TraceIdScope scope(kTraceId);
  std::vector<std::uint64_t> seen(16, 0);
  pool.run_shards(4, 16, [&seen](std::size_t s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seen[s] = CurrentTraceId();
  });
  for (std::size_t s = 0; s < seen.size(); ++s) {
    EXPECT_EQ(seen[s], kTraceId) << "shard " << s;
  }
}

/// Records every ObsAdd by name; installed on the caller thread only, so
/// any count it sees from helper shards must have come through the
/// run_shards delta relay.
class RecordingSink : public ObsSink {
 public:
  void add(const char* name, std::int64_t delta) override {
    counts_[name] += delta;
  }
  std::int64_t count(const std::string& name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::int64_t> counts_;
};

TEST(ThreadPoolShardTest, HelperCountersRelayToCallerSink) {
  ThreadPool pool(4);
  RecordingSink sink;
  {
    ObsScope scope(&sink);
    pool.run_shards(4, 32, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ObsAdd("discover.validator.calls", 3);
    });
  }
  // All 32 shards' counters arrive regardless of which thread ran them.
  EXPECT_EQ(sink.count("discover.validator.calls"), 32 * 3);
}

TEST(ThreadPoolShardTest, CostLedgerAggregatesAcrossHelpers) {
  // A CostLedgerScope around a parallel batch must absorb helper-side
  // classified counters (via the relay) on top of the caller's own.
  ThreadPool pool(4);
  CostLedger ledger;
  {
    CostLedgerScope scope(&ledger);
    pool.run_shards(4, 32, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ObsAdd("discover.validator.calls", 1);
      ObsAdd("partition.cache_hits", 2);
    });
  }
  EXPECT_EQ(ledger.validations, 32);
  EXPECT_EQ(ledger.cache_hits, 64);
  // The scope charges the caller's thread clock; helper CPU arrives as
  // pool.shard_cpu_ns deltas. Both are >= 0 and summed into cpu_ns.
  EXPECT_GE(ledger.cpu_ns, 0);
}

}  // namespace
}  // namespace dhyfd
