#include "datagen/benchmark_data.h"

#include <gtest/gtest.h>

#include "relation/encoder.h"

namespace dhyfd {
namespace {

TEST(BenchmarkDataTest, CatalogHasAllPaperDatasets) {
  const auto& names = BenchmarkNames();
  EXPECT_EQ(names.size(), 22u);  // 21 from Tables II/III + china (Table IV)
  for (const char* expected :
       {"iris", "ncvoter", "weather", "diabetic", "flight", "fd_reduced",
        "pdbx", "lineitem", "uniprot", "china"}) {
    EXPECT_NE(FindBenchmark(expected), nullptr) << expected;
  }
  EXPECT_EQ(FindBenchmark("nope"), nullptr);
}

TEST(BenchmarkDataTest, SpecsMatchPaperColumnCounts) {
  for (const std::string& name : BenchmarkNames()) {
    const BenchmarkInfo* info = FindBenchmark(name);
    ASSERT_NE(info, nullptr);
    DatasetSpec spec = MakeBenchmarkSpec(name);
    if (info->has_table2) {
      EXPECT_EQ(spec.num_cols(), info->t2.cols) << name;
    }
    EXPECT_EQ(spec.rows, info->default_rows) << name;
  }
}

TEST(BenchmarkDataTest, RowOverride) {
  DatasetSpec spec = MakeBenchmarkSpec("ncvoter", 123);
  EXPECT_EQ(spec.rows, 123);
}

TEST(BenchmarkDataTest, GeneratedTablesEncode) {
  for (const std::string& name : BenchmarkNames()) {
    RawTable t = GenerateBenchmark(name, 50);
    EXPECT_EQ(t.num_rows(), 50) << name;
    EncodedRelation e = EncodeRelation(t);
    EXPECT_EQ(e.relation.num_rows(), 50) << name;
    EXPECT_GT(e.relation.max_domain_size(), 0) << name;
  }
}

TEST(BenchmarkDataTest, NcvoterHasConstantStateColumn) {
  RawTable t = GenerateBenchmark("ncvoter", 200);
  EncodedRelation e = EncodeRelation(t);
  AttrId state = e.relation.schema().index_of("state");
  ASSERT_GE(state, 0);
  EXPECT_EQ(e.relation.domain_size(state), 1);
}

TEST(BenchmarkDataTest, NcvoterZipDeterminesCity) {
  RawTable t = GenerateBenchmark("ncvoter", 400);
  EncodedRelation e = EncodeRelation(t);
  AttrId zip = e.relation.schema().index_of("zip_code");
  AttrId city = e.relation.schema().index_of("city");
  ASSERT_GE(zip, 0);
  ASSERT_GE(city, 0);
  EXPECT_TRUE(e.relation.satisfies(AttributeSet::single(zip), city));
}

TEST(BenchmarkDataTest, IncompleteDatasetsHaveNulls) {
  for (const char* name : {"bridges", "echo", "hepatitis", "horse", "flight"}) {
    RawTable t = GenerateBenchmark(name, 150);
    EncodedRelation e = EncodeRelation(t);
    NullStats s = ComputeNullStats(e.relation);
    EXPECT_GT(s.null_occurrences, 0) << name;
  }
}

TEST(BenchmarkDataTest, CompleteDatasetsHaveNoNulls) {
  for (const char* name : {"iris", "balance", "chess", "letter", "fd_reduced"}) {
    RawTable t = GenerateBenchmark(name, 150);
    EncodedRelation e = EncodeRelation(t);
    NullStats s = ComputeNullStats(e.relation);
    EXPECT_EQ(s.null_occurrences, 0) << name;
  }
}

TEST(BenchmarkDataTest, PaperFactsSpotChecks) {
  const BenchmarkInfo* ncvoter = FindBenchmark("ncvoter");
  ASSERT_NE(ncvoter, nullptr);
  EXPECT_EQ(ncvoter->t2.fds, 758);
  EXPECT_EQ(ncvoter->t3.can, 185);
  EXPECT_EQ(ncvoter->t4.red, 2886);

  const BenchmarkInfo* weather = FindBenchmark("weather");
  ASSERT_NE(weather, nullptr);
  EXPECT_EQ(weather->t2.tane, kTimeLimit);
  EXPECT_DOUBLE_EQ(weather->t2.dhyfd, 49.839);
  EXPECT_FALSE(weather->has_table4);

  const BenchmarkInfo* flight = FindBenchmark("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->t2.cols, 109);
  EXPECT_EQ(flight->t4.red_plus0, 100233);
}

TEST(BenchmarkDataTest, UnknownSpecThrows) {
  EXPECT_THROW(MakeBenchmarkSpec("unknown"), std::invalid_argument);
}

}  // namespace
}  // namespace dhyfd
