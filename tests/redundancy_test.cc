#include "ranking/redundancy.h"

#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

TEST(RedundancyTest, ConstantColumnMakesEveryOccurrenceRedundant) {
  // Paper sigma_1 = {} -> state: all 1000 occurrences redundant; here 4.
  Relation r = FromValues({{7, 0}, {7, 1}, {7, 2}, {7, 3}});
  FdSet cover;
  cover.add(Fd(AttributeSet{}, 0));
  auto reds = ComputeFdRedundancies(r, cover);
  ASSERT_EQ(reds.size(), 1u);
  EXPECT_EQ(reds[0].with_nulls, 4);
  EXPECT_EQ(reds[0].excluding_null_rhs, 4);
}

TEST(RedundancyTest, NearKeyLhsGivesFewRedundancies) {
  // Paper sigma_4 = voter_id -> state with one duplicated id: 2 redundant.
  Relation r = FromValues({{131, 0}, {131, 0}, {657, 0}, {725, 0}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 1));
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 2);
}

TEST(RedundancyTest, NullRhsExcluded) {
  // Column 1 determined by column 0; one of the cluster's RHS values null.
  Relation r = FromValues({{0, -1}, {0, -1}, {1, 5}, {1, 5}, {2, 6}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 1));
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 4);
  EXPECT_EQ(reds[0].excluding_null_rhs, 2);
  EXPECT_EQ(reds[0].excluding_null_lhs_rhs, 2);
}

TEST(RedundancyTest, NullLhsExcludedInStrictMode) {
  Relation r = FromValues({{-1, 5}, {-1, 5}, {1, 6}, {1, 6}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 1));
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 4);
  EXPECT_EQ(reds[0].excluding_null_rhs, 4);
  EXPECT_EQ(reds[0].excluding_null_lhs_rhs, 2);
}

TEST(RedundancyTest, MultiRhsSumsPerAttribute) {
  Relation r = FromValues({{0, 1, 2}, {0, 1, 2}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, AttributeSet{1, 2}));
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 4);  // 2 tuples x 2 RHS attrs
}

TEST(RedundancyTest, MatchesBruteForce) {
  for (int seed = 1; seed <= 8; ++seed) {
    Relation r = RandomRelation(seed * 7, 50, 4, 3, seed % 3 == 0 ? 0.15 : 0.0);
    FdSet cover = BruteForceDiscover(r);
    auto fast = ComputeFdRedundancies(r, cover);
    ASSERT_EQ(fast.size(), cover.fds.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      FdRedundancy slow = BruteForceFdRedundancy(r, cover.fds[i]);
      EXPECT_EQ(fast[i].with_nulls, slow.with_nulls)
          << "seed=" << seed << " fd=" << cover.fds[i].to_string();
      EXPECT_EQ(fast[i].excluding_null_rhs, slow.excluding_null_rhs);
      EXPECT_EQ(fast[i].excluding_null_lhs_rhs, slow.excluding_null_lhs_rhs);
    }
  }
}

TEST(RedundancyTest, DatasetDedupAcrossFds) {
  // Two FDs marking the same occurrences: dataset counts each cell once.
  Relation r = FromValues({{0, 1, 5}, {0, 1, 5}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 2));
  cover.add(Fd(AttributeSet{1}, 2));
  DatasetRedundancy d = ComputeDatasetRedundancy(r, cover);
  EXPECT_EQ(d.red_plus0, 2);  // two cells in column 2, counted once each
  EXPECT_EQ(d.num_values, 6);
}

TEST(RedundancyTest, DatasetPercentages) {
  Relation r = FromValues({{7, 0}, {7, 1}});
  FdSet cover;
  cover.add(Fd(AttributeSet{}, 0));
  DatasetRedundancy d = ComputeDatasetRedundancy(r, cover);
  EXPECT_EQ(d.red, 2);
  EXPECT_NEAR(d.percent_red(), 50.0, 1e-9);
  EXPECT_NEAR(d.percent_red_plus0(), 50.0, 1e-9);
}

TEST(RedundancyTest, KeysCauseZeroRedundancy) {
  Relation r = FromValues({{0, 5}, {1, 5}, {2, 6}});
  FdSet cover;
  cover.add(Fd(AttributeSet{0}, 1));  // key LHS
  auto reds = ComputeFdRedundancies(r, cover);
  EXPECT_EQ(reds[0].with_nulls, 0);
}

TEST(RedundancyTest, EmptyCoverEmptyCounts) {
  Relation r = FromValues({{0}, {1}});
  FdSet cover;
  EXPECT_TRUE(ComputeFdRedundancies(r, cover).empty());
  DatasetRedundancy d = ComputeDatasetRedundancy(r, cover);
  EXPECT_EQ(d.red, 0);
  EXPECT_EQ(d.red_plus0, 0);
}

}  // namespace
}  // namespace dhyfd
