#include "partition/partition_cache.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

TEST(PartitionCacheTest, MatchesDirectBuild) {
  Relation r = RandomRelation(3, 120, 5, 3);
  PartitionCache cache(r);
  for (AttributeSet x : {AttributeSet{0}, AttributeSet{1, 3}, AttributeSet{0, 2, 4}}) {
    StrippedPartition cached = *cache.get(x);
    StrippedPartition direct = BuildPartition(r, x);
    cached.normalize();
    direct.normalize();
    EXPECT_EQ(cached.to_string(), direct.to_string()) << x.to_string();
  }
}

TEST(PartitionCacheTest, PrefixesAreReused) {
  Relation r = RandomRelation(5, 100, 5, 3);
  PartitionCache cache(r);
  cache.get(AttributeSet{0, 1, 2});
  int64_t built = cache.partitions_built();
  // {0,1} is a prefix of {0,1,2}: already cached, nothing new to build.
  cache.get(AttributeSet{0, 1});
  EXPECT_EQ(cache.partitions_built(), built);
  // {0,1,3} shares the {0,1} prefix: exactly one new refinement.
  cache.get(AttributeSet{0, 1, 3});
  EXPECT_EQ(cache.partitions_built(), built + 1);
}

TEST(PartitionCacheTest, ImpliesMatchesSatisfies) {
  Relation r = RandomRelation(7, 90, 4, 3);
  PartitionCache cache(r);
  for (AttrId a = 0; a < 4; ++a) {
    for (AttrId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(cache.implies(AttributeSet::single(b), a),
                r.satisfies(AttributeSet::single(b), a))
          << b << "->" << a;
    }
  }
}

TEST(PartitionCacheTest, EmptyLhsConstantCheck) {
  Relation r = FromValues({{7, 0}, {7, 1}});
  PartitionCache cache(r);
  EXPECT_TRUE(cache.implies(AttributeSet(), 0));
  EXPECT_FALSE(cache.implies(AttributeSet(), 1));
}

TEST(PartitionCacheTest, EvictionKeepsCorrectness) {
  Relation r = RandomRelation(11, 80, 6, 3);
  PartitionCache cache(r, /*max_entries=*/2);
  for (int round = 0; round < 3; ++round) {
    PartitionPin p = cache.get(AttributeSet{1, 4});
    StrippedPartition direct = BuildPartition(r, AttributeSet{1, 4});
    EXPECT_EQ(p->support(), direct.support());
    cache.get(AttributeSet{0, 2});  // force churn
  }
}

}  // namespace
}  // namespace dhyfd
