#include "fd/normalize.h"

#include <gtest/gtest.h>

#include "algo/discovery.h"
#include "fd/closure.h"
#include "fd/cover.h"
#include "fd/keys.h"
#include "test_util.h"

namespace dhyfd {
namespace {

FdSet ZipCover() {
  // R = {city(0), street(1), zip(2)}: {city,street} -> zip, zip -> city.
  // The classic BCNF-unreachable-with-preservation example.
  FdSet fds;
  fds.add(Fd(AttributeSet{0, 1}, 2));
  fds.add(Fd(AttributeSet{2}, 0));
  return fds;
}

TEST(NormalizeTest, BcnfDetection) {
  FdSet bcnf;
  bcnf.add(Fd(AttributeSet{0}, 1));  // {A} -> B with A key of {A,B}
  EXPECT_TRUE(IsBcnf(bcnf, 2));
  EXPECT_FALSE(IsBcnf(ZipCover(), 3));
}

TEST(NormalizeTest, ThreeNfDetection) {
  // ZipCover is in 3NF (city is prime) but not BCNF.
  EXPECT_TRUE(Is3nf(ZipCover(), 3));
  // A -> B with key {A,C} and B non-prime: not 3NF.
  FdSet partial;
  partial.add(Fd(AttributeSet{0}, 1));
  EXPECT_FALSE(Is3nf(partial, 3));
  EXPECT_TRUE(Is3nf(FdSet(), 3));
}

TEST(NormalizeTest, BcnfViolationsList) {
  std::vector<Fd> violations = BcnfViolations(ZipCover(), 3);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].lhs, AttributeSet{2});  // zip -> city
}

TEST(NormalizeTest, ProjectCover) {
  // Project A -> B, B -> C onto {A, C}: transitively A -> C.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 2));
  FdSet projected = ProjectCover(fds, AttributeSet{0, 2}, 3);
  ASSERT_EQ(projected.size(), 1);
  EXPECT_EQ(projected.fds[0], Fd(AttributeSet{0}, 2));
}

TEST(NormalizeTest, BcnfDecompositionIsLosslessShaped) {
  BcnfResult result = DecomposeBcnf(ZipCover(), 3);
  ASSERT_GE(result.schemas.size(), 2u);
  // Every schema must itself be in BCNF w.r.t. its projected FDs.
  for (const SubSchema& s : result.schemas) {
    ClosureEngine engine(s.fds, 3);
    for (const Fd& fd : s.fds.fds) {
      if (fd.rhs.is_subset_of(fd.lhs)) continue;
      EXPECT_TRUE(s.attrs.is_subset_of(engine.closure(fd.lhs)))
          << s.attrs.to_string() << " " << fd.to_string();
    }
  }
  // The classic example loses {city,street} -> zip.
  EXPECT_FALSE(result.dependencies_preserved);
  // Union of schemas covers the original attributes.
  AttributeSet covered;
  for (const SubSchema& s : result.schemas) covered |= s.attrs;
  EXPECT_EQ(covered, AttributeSet::full(3));
}

TEST(NormalizeTest, BcnfDecompositionOfBcnfSchemaIsIdentity) {
  FdSet bcnf;
  bcnf.add(Fd(AttributeSet{0}, AttributeSet{1, 2}));  // A key of {A,B,C}
  BcnfResult result = DecomposeBcnf(bcnf, 3);
  ASSERT_EQ(result.schemas.size(), 1u);
  EXPECT_EQ(result.schemas[0].attrs, AttributeSet::full(3));
  EXPECT_TRUE(result.dependencies_preserved);
}

TEST(NormalizeTest, Synthesize3nfPreservesDependenciesAndKey) {
  FdSet canonical = CanonicalCover(ZipCover(), 3);
  std::vector<SubSchema> schemas = Synthesize3nf(canonical, 3);
  // Union of per-schema FDs implies the cover.
  FdSet united;
  for (const SubSchema& s : schemas) {
    for (const Fd& fd : s.fds.fds) united.add(fd);
  }
  EXPECT_TRUE(CoversEquivalent(united, canonical, 3));
  // Some schema contains a candidate key.
  std::vector<AttributeSet> keys = FindCandidateKeys(canonical, 3);
  bool key_contained = false;
  for (const SubSchema& s : schemas) {
    for (const AttributeSet& key : keys) {
      if (key.is_subset_of(s.attrs)) key_contained = true;
    }
  }
  EXPECT_TRUE(key_contained);
}

TEST(NormalizeTest, Synthesize3nfCoversAllAttributes) {
  // Attribute 3 appears in no FD: it must land in the key schema.
  FdSet canonical = CanonicalCover(ZipCover(), 4);
  std::vector<SubSchema> schemas = Synthesize3nf(canonical, 4);
  AttributeSet covered;
  for (const SubSchema& s : schemas) covered |= s.attrs;
  EXPECT_EQ(covered, AttributeSet::full(4));
}

TEST(NormalizeTest, SynthesisOnDiscoveredCover) {
  Relation r = testutil::RandomRelation(33, 80, 5, 3);
  FdSet lr = BruteForceDiscover(r);
  FdSet canonical = CanonicalCover(lr, 5);
  std::vector<SubSchema> schemas = Synthesize3nf(canonical, 5);
  AttributeSet covered;
  FdSet united;
  for (const SubSchema& s : schemas) {
    covered |= s.attrs;
    for (const Fd& fd : s.fds.fds) united.add(fd);
  }
  EXPECT_EQ(covered, AttributeSet::full(5));
  EXPECT_TRUE(CoversEquivalent(united, canonical, 5));
}

TEST(NormalizeTest, SubSchemaToString) {
  Schema schema({"a", "b", "c"});
  SubSchema s{AttributeSet{0, 2}, {}, true};
  EXPECT_EQ(s.to_string(schema), "R(a, c) [key schema]");
}

}  // namespace
}  // namespace dhyfd
