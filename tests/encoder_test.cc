#include "relation/encoder.h"

#include <gtest/gtest.h>

namespace dhyfd {
namespace {

RawTable SampleTable() {
  RawTable t;
  t.header = {"a", "b"};
  t.rows = {{"x", "1"}, {"y", ""}, {"x", "2"}, {"", ""}};
  return t;
}

TEST(EncoderTest, DensifiesCodesPerColumn) {
  EncodedRelation e = EncodeRelation(SampleTable());
  const Relation& r = e.relation;
  EXPECT_EQ(r.num_rows(), 4);
  EXPECT_EQ(r.num_cols(), 2);
  // Column a: x, y, x, null -> codes 0,1,0,2.
  EXPECT_EQ(r.value(0, 0), r.value(2, 0));
  EXPECT_NE(r.value(0, 0), r.value(1, 0));
  EXPECT_EQ(r.domain_size(0), 3);
}

TEST(EncoderTest, NullEqualsNullSharesCode) {
  EncodedRelation e = EncodeRelation(SampleTable(), NullSemantics::kNullEqualsNull);
  const Relation& r = e.relation;
  // Rows 1 and 3 both null in column b: same code.
  EXPECT_EQ(r.value(1, 1), r.value(3, 1));
  EXPECT_TRUE(r.is_null(1, 1));
  EXPECT_TRUE(r.is_null(3, 1));
  EXPECT_FALSE(r.is_null(0, 1));
}

TEST(EncoderTest, NullNotEqualsNullGivesFreshCodes) {
  EncodedRelation e = EncodeRelation(SampleTable(), NullSemantics::kNullNotEqualsNull);
  const Relation& r = e.relation;
  EXPECT_NE(r.value(1, 1), r.value(3, 1));
  EXPECT_TRUE(r.is_null(1, 1));
  EXPECT_TRUE(r.is_null(3, 1));
}

TEST(EncoderTest, DictionaryDecodes) {
  EncodedRelation e = EncodeRelation(SampleTable());
  EXPECT_EQ(e.decode(0, 0), "x");
  EXPECT_EQ(e.decode(1, 0), "y");
  EXPECT_EQ(e.decode(2, 1), "2");
}

TEST(EncoderTest, QuestionMarkIsNullByDefault) {
  RawTable t;
  t.header = {"a"};
  t.rows = {{"?"}, {"v"}};
  EncodedRelation e = EncodeRelation(t);
  EXPECT_TRUE(e.relation.is_null(0, 0));
  EXPECT_FALSE(e.relation.is_null(1, 0));
}

TEST(EncoderTest, NullStats) {
  EncodedRelation e = EncodeRelation(SampleTable());
  NullStats s = ComputeNullStats(e.relation);
  EXPECT_EQ(s.null_occurrences, 3);
  EXPECT_EQ(s.incomplete_columns, 2);
  EXPECT_EQ(s.incomplete_rows, 2);  // rows 1 and 3
}

TEST(EncoderTest, CompleteTableHasNoNulls) {
  RawTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "2"}, {"3", "4"}};
  EncodedRelation e = EncodeRelation(t);
  NullStats s = ComputeNullStats(e.relation);
  EXPECT_EQ(s.null_occurrences, 0);
  EXPECT_EQ(s.incomplete_columns, 0);
  EXPECT_FALSE(e.relation.column_has_nulls(0));
}

TEST(EncoderTest, EmptyTable) {
  RawTable t;
  t.header = {"a"};
  EncodedRelation e = EncodeRelation(t);
  EXPECT_EQ(e.relation.num_rows(), 0);
  EXPECT_EQ(e.relation.domain_size(0), 0);
}

TEST(EncoderTest, NullNotEqualsNullGrowsDomain) {
  EncodedRelation eq = EncodeRelation(SampleTable(), NullSemantics::kNullEqualsNull);
  EncodedRelation neq = EncodeRelation(SampleTable(), NullSemantics::kNullNotEqualsNull);
  // Column b has values {1, 2} plus two nulls: 3 codes under =, 4 under !=.
  EXPECT_EQ(eq.relation.domain_size(1), 3);
  EXPECT_EQ(neq.relation.domain_size(1), 4);
}

}  // namespace
}  // namespace dhyfd
