#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/messages.h"
#include "util/random.h"

namespace dhyfd::net {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(WireWriterReaderTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  w.str("");

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WireWriterReaderTest, IntegersAreLittleEndian) {
  WireWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(WireReaderTest, TruncatedReadsThrow) {
  std::vector<std::uint8_t> two = Bytes({1, 2});
  WireReader r(two);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW(r.u8(), WireError);

  WireReader r2(two);
  EXPECT_THROW(r2.u32(), WireError);
}

TEST(WireReaderTest, StringLengthBeyondPayloadThrows) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  WireReader r(w.bytes());
  EXPECT_THROW(r.str(), WireError);
}

TEST(WireReaderTest, TrailingBytesRejected) {
  WireWriter w;
  w.u8(7);
  w.u8(8);
  WireReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> payload = Bytes({1, 2, 3, 4, 5});
  std::vector<std::uint8_t> wire =
      EncodeFrame(MsgType::kSubmitDiscovery, 0xfeedfacecafef00dull, payload);
  ASSERT_EQ(wire.size(), kLengthPrefixBytes + kFrameHeaderBytes + payload.size());

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, MsgType::kSubmitDiscovery);
  EXPECT_EQ(f.request_id, 0xfeedfacecafef00dull);
  EXPECT_EQ(f.payload, payload);
  EXPECT_FALSE(dec.next(&f));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, ReassemblesByteAtATime) {
  std::vector<std::uint8_t> wire =
      EncodeFrame(MsgType::kPing, 42, Bytes({9, 9, 9}));
  FrameDecoder dec;
  Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    EXPECT_FALSE(dec.next(&f)) << "frame complete too early at byte " << i;
  }
  dec.feed(&wire[wire.size() - 1], 1);
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.request_id, 42u);
}

TEST(FrameDecoderTest, ManyFramesInOneFeed) {
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> one =
        EncodeFrame(MsgType::kCredit, static_cast<std::uint64_t>(i),
                    Bytes({i & 0xff}));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame f;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(dec.next(&f));
    EXPECT_EQ(f.request_id, static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(dec.next(&f));
}

TEST(FrameDecoderTest, LengthBelowHeaderSizeThrows) {
  // len = 3 < 9: cannot even hold type + request id.
  std::vector<std::uint8_t> wire = Bytes({3, 0, 0, 0, 1, 0, 0});
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame f;
  EXPECT_THROW(dec.next(&f), WireError);
}

TEST(FrameDecoderTest, OversizedLengthPrefixThrowsBeforeBuffering) {
  // A hostile 4 GiB length prefix must be rejected from the 4 prefix bytes
  // alone — no waiting for (or allocating) the claimed payload.
  std::vector<std::uint8_t> wire = Bytes({0xff, 0xff, 0xff, 0xff});
  FrameDecoder dec(1 << 20);
  dec.feed(wire.data(), wire.size());
  Frame f;
  EXPECT_THROW(dec.next(&f), WireError);
  EXPECT_LT(dec.buffered_bytes(), std::size_t{16});
}

TEST(FrameDecoderTest, UnknownTypeByteThrowsEarly) {
  // Valid length, type byte 200 (undefined): rejected as soon as the type
  // byte is visible, before the payload arrives.
  std::vector<std::uint8_t> wire = Bytes({100, 0, 0, 0, 200});
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame f;
  EXPECT_THROW(dec.next(&f), WireError);
}

TEST(FrameDecoderTest, PoisonedAfterError) {
  std::vector<std::uint8_t> bad = Bytes({1, 0, 0, 0, 1, 2, 3});
  FrameDecoder dec;
  dec.feed(bad.data(), bad.size());
  Frame f;
  EXPECT_THROW(dec.next(&f), WireError);
  // Feeding a perfectly valid frame afterwards must not resurrect it.
  std::vector<std::uint8_t> good = EncodeFrame(MsgType::kPing, 1, {});
  dec.feed(good.data(), good.size());
  EXPECT_THROW(dec.next(&f), WireError);
}

TEST(FrameDecoderTest, GarbageBytesNeverCrash) {
  // Fuzz-ish sweep: random byte soup must either parse (when the prefix
  // happens to be consistent) or throw WireError — never UB. Run under
  // ASan in ci.sh.
  Random rng(20260808);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> soup(rng.next_below(300));
    for (std::uint8_t& b : soup) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    FrameDecoder dec(1 << 16);
    Frame f;
    try {
      dec.feed(soup.data(), soup.size());
      while (dec.next(&f)) {
      }
    } catch (const WireError&) {
      // expected for most soups
    }
  }
}

TEST(FrameDecoderTest, TruncatedThenCorruptedFrameThrows) {
  // A legal frame whose tail is replaced by another frame's head: the
  // decoder returns the first frame and then chokes on the splice point
  // (or waits for more bytes) without misattributing payload bytes.
  std::vector<std::uint8_t> a =
      EncodeFrame(MsgType::kHello, 7, Bytes({1, 2, 3, 4, 5, 6, 7, 8}));
  FrameDecoder dec;
  // Feed all of frame A but cut the last 4 payload bytes and splice in a
  // bogus oversized prefix; those 4 bytes complete A's length, so A's
  // payload is now wrong but structurally complete.
  std::vector<std::uint8_t> spliced(a.begin(), a.end() - 4);
  std::vector<std::uint8_t> bogus = Bytes({0xff, 0xff, 0xff, 0x7f});
  spliced.insert(spliced.end(), bogus.begin(), bogus.end());
  dec.feed(spliced.data(), spliced.size());
  Frame f;
  ASSERT_TRUE(dec.next(&f));  // structurally complete (corrupt payload)
  EXPECT_EQ(f.payload.size(), 8u);
  EXPECT_FALSE(dec.next(&f));  // bogus prefix: 4 bytes buffered, no frame yet
}

// ---------------------------------------------------------------- messages

TEST(MessagesTest, SubmitDiscoveryRoundTrip) {
  SubmitDiscoveryMsg msg;
  msg.dataset = "abalone";
  msg.algorithm = "tane";
  msg.semantics = 1;
  msg.priority = -3;
  msg.deadline_ms = 2500;
  msg.top_k = 7;
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  SubmitDiscoveryMsg out = SubmitDiscoveryMsg::decode(r);
  EXPECT_EQ(out.dataset, "abalone");
  EXPECT_EQ(out.algorithm, "tane");
  EXPECT_EQ(out.semantics, 1);
  EXPECT_EQ(out.priority, -3);
  EXPECT_EQ(out.deadline_ms, 2500u);
  EXPECT_EQ(out.top_k, 7u);
}

TEST(MessagesTest, DiscoveryResultRoundTrip) {
  DiscoveryResultMsg msg;
  msg.state = "done";
  msg.cover_size = 12;
  msg.canonical_size = 9;
  msg.queue_seconds = 0.5;
  msg.run_seconds = 1.25;
  msg.top = {{"{1,2} -> {3}", 100.0}, {"{4} -> {5}", 7.0}};
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  DiscoveryResultMsg out = DiscoveryResultMsg::decode(r);
  EXPECT_EQ(out.state, "done");
  ASSERT_EQ(out.top.size(), 2u);
  EXPECT_EQ(out.top[0].fd, "{1,2} -> {3}");
  EXPECT_EQ(out.top[1].redundancy, 7.0);
}

TEST(MessagesTest, ApplyUpdateRoundTrip) {
  ApplyUpdateMsg msg;
  msg.dataset = "d";
  msg.inserts = {{"a", "b"}, {"", "x,y"}};
  msg.deletes = {3, -1, 99};
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  ApplyUpdateMsg out = ApplyUpdateMsg::decode(r);
  EXPECT_EQ(out.inserts, msg.inserts);
  EXPECT_EQ(out.deletes, msg.deletes);
}

TEST(MessagesTest, HostileElementCountRejectedWithoutAllocation) {
  // A CoverResultMsg claiming 2^31 ranked FDs in a 12-byte payload must be
  // rejected by the count guard, not by attempting the reserve.
  WireWriter w;
  w.u32(5);                 // total
  w.u32(0x80000000u);       // claimed element count
  w.u32(0);                 // a few junk bytes
  WireReader r(w.bytes());
  EXPECT_THROW(CoverResultMsg::decode(r), WireError);
}

TEST(MessagesTest, TruncatedPayloadThrowsNotCrashes) {
  // Encode each message, then decode every strict prefix: all must throw
  // WireError (truncation) or succeed only at full length.
  SubmitDiscoveryMsg msg;
  msg.dataset = "dataset-name";
  msg.top_k = 3;
  WireWriter w;
  msg.encode(w);
  const std::vector<std::uint8_t>& full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.data(), cut);
    EXPECT_THROW(
        {
          SubmitDiscoveryMsg got = SubmitDiscoveryMsg::decode(r);
          (void)got;
        },
        WireError)
        << "prefix of " << cut << " bytes decoded successfully";
  }
}

TEST(MessagesTest, SubmitQueryRoundTrip) {
  SubmitQueryMsg msg;
  msg.dataset = "abalone";
  msg.semantics = 1;
  msg.priority = 2;
  msg.deadline_ms = 1500;
  msg.epsilon = 0.05;
  msg.max_lhs = 3;
  msg.top_k = 10;
  msg.ranking_mode = 1;
  msg.include_columns = {0, 2, 5};
  msg.exclude_columns = {2};
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  SubmitQueryMsg out = SubmitQueryMsg::decode(r);
  EXPECT_EQ(out.dataset, "abalone");
  EXPECT_EQ(out.epsilon, 0.05);
  EXPECT_EQ(out.max_lhs, 3u);
  EXPECT_EQ(out.top_k, 10u);
  EXPECT_EQ(out.ranking_mode, 1);
  EXPECT_EQ(out.include_columns, (std::vector<std::uint8_t>{0, 2, 5}));
  EXPECT_EQ(out.exclude_columns, (std::vector<std::uint8_t>{2}));
}

TEST(MessagesTest, SubmitParallelismRoundTripsAtV4) {
  SubmitDiscoveryMsg msg;
  msg.dataset = "d";
  msg.parallelism = 6;
  WireWriter w;
  msg.encode(w);  // default version is v4+
  WireReader r(w.bytes());
  EXPECT_EQ(SubmitDiscoveryMsg::decode(r).parallelism, 6u);

  SubmitQueryMsg qmsg;
  qmsg.dataset = "d";
  qmsg.parallelism = 3;
  WireWriter qw;
  qmsg.encode(qw);
  WireReader qr(qw.bytes());
  EXPECT_EQ(SubmitQueryMsg::decode(qr).parallelism, 3u);
}

TEST(MessagesTest, SubmitSchemaIsVersionExact) {
  // A v3 encoding omits the parallelism field entirely; a v3 decode of it
  // succeeds with the default degree. The same bytes at v4 are a truncated
  // payload, and a v4 encoding carries trailing bytes for a v3 decoder —
  // both directions must throw rather than guess.
  SubmitDiscoveryMsg msg;
  msg.dataset = "d";
  msg.parallelism = 8;
  WireWriter v3;
  msg.encode(v3, kTraceProtocolVersion);
  WireWriter v4;
  msg.encode(v4, kParallelProtocolVersion);
  EXPECT_EQ(v3.bytes().size() + 4, v4.bytes().size());

  WireReader ok(v3.bytes());
  SubmitDiscoveryMsg old = SubmitDiscoveryMsg::decode(ok,
                                                      kTraceProtocolVersion);
  EXPECT_EQ(old.parallelism, 0u);  // field never crossed the wire

  WireReader short_read(v3.bytes());
  EXPECT_THROW(SubmitDiscoveryMsg::decode(short_read,
                                          kParallelProtocolVersion),
               WireError);
  WireReader long_read(v4.bytes());
  EXPECT_THROW(SubmitDiscoveryMsg::decode(long_read, kTraceProtocolVersion),
               WireError);

  SubmitQueryMsg qmsg;
  qmsg.dataset = "d";
  qmsg.parallelism = 8;
  WireWriter qv3;
  qmsg.encode(qv3, kTraceProtocolVersion);
  WireReader qok(qv3.bytes());
  EXPECT_EQ(SubmitQueryMsg::decode(qok, kTraceProtocolVersion).parallelism,
            0u);
  WireReader qshort(qv3.bytes());
  EXPECT_THROW(SubmitQueryMsg::decode(qshort, kParallelProtocolVersion),
               WireError);
}

TEST(MessagesTest, QueryResultRoundTrip) {
  QueryResultMsg msg;
  msg.state = "done";
  msg.total = 4;
  msg.early_terminated = true;
  msg.timed_out = false;
  msg.validations = 123;
  msg.pruned_epsilon = 7;
  msg.pruned_arity = 9;
  msg.pruned_bound = 55;
  msg.queue_seconds = 0.125;
  msg.run_seconds = 2.5;
  msg.fds = {{"{1} -> {2}", 40.0}, {"{0,3} -> {1}", 12.0}};
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  QueryResultMsg out = QueryResultMsg::decode(r);
  EXPECT_EQ(out.state, "done");
  EXPECT_EQ(out.total, 4u);
  EXPECT_TRUE(out.early_terminated);
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(out.validations, 123u);
  EXPECT_EQ(out.pruned_bound, 55u);
  ASSERT_EQ(out.fds.size(), 2u);
  EXPECT_EQ(out.fds[1].fd, "{0,3} -> {1}");
}

TEST(MessagesTest, TruncatedSubmitQueryThrowsAtEveryPrefix) {
  SubmitQueryMsg msg;
  msg.dataset = "dataset-name";
  msg.epsilon = 0.1;
  msg.top_k = 5;
  msg.include_columns = {0, 1, 2};
  msg.exclude_columns = {1};
  WireWriter w;
  msg.encode(w);
  const std::vector<std::uint8_t>& full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.data(), cut);
    EXPECT_THROW(
        {
          SubmitQueryMsg got = SubmitQueryMsg::decode(r);
          (void)got;
        },
        WireError)
        << "prefix of " << cut << " bytes decoded successfully";
  }
  WireReader ok(full.data(), full.size());
  EXPECT_NO_THROW(SubmitQueryMsg::decode(ok));
}

TEST(MessagesTest, HostileQueryColumnCountRejectedWithoutAllocation) {
  // A column list claiming 2^31 entries in a tiny payload must trip the
  // count guard before any reserve happens.
  SubmitQueryMsg msg;
  msg.dataset = "d";
  WireWriter w;
  w.str(msg.dataset);
  w.u8(0);              // semantics
  w.u32(0);             // priority
  w.u32(0);             // deadline_ms
  w.f64(0);             // epsilon
  w.u32(0);             // max_lhs
  w.u32(0);             // top_k
  w.u8(0);              // ranking_mode
  w.u32(0x80000000u);   // hostile include count
  WireReader r(w.bytes());
  EXPECT_THROW(SubmitQueryMsg::decode(r), WireError);
}

TEST(MessagesTest, HostileEpsilonAndKStillDecode) {
  // Semantically absurd-but-well-framed values must DECODE fine; rejecting
  // them is the server's job (kBadRequest), so a hostile spec costs one
  // request, not the connection.
  SubmitQueryMsg msg;
  msg.dataset = "d";
  msg.epsilon = -42.0;
  msg.max_lhs = 0xffffffffu;
  msg.top_k = 0xffffffffu;
  msg.ranking_mode = 200;
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  SubmitQueryMsg out;
  EXPECT_NO_THROW(out = SubmitQueryMsg::decode(r));
  EXPECT_EQ(out.epsilon, -42.0);
  EXPECT_EQ(out.max_lhs, 0xffffffffu);
}

TEST(MessagesTest, QueryFrameTypesAreKnown) {
  EXPECT_TRUE(IsKnownMsgType(static_cast<std::uint8_t>(MsgType::kSubmitQuery)));
  EXPECT_TRUE(IsKnownMsgType(static_cast<std::uint8_t>(MsgType::kQueryResult)));
  // v3 extends both ranges: the trace envelope and the cost trailer are the
  // new range ends.
  EXPECT_TRUE(IsKnownMsgType(static_cast<std::uint8_t>(MsgType::kTracedRequest)));
  EXPECT_TRUE(IsKnownMsgType(static_cast<std::uint8_t>(MsgType::kCostTrailer)));
  // The hole between client and server ranges is still unknown.
  EXPECT_FALSE(IsKnownMsgType(13));
  EXPECT_FALSE(IsKnownMsgType(63));
  EXPECT_FALSE(IsKnownMsgType(77));
}

TEST(MessagesTest, ErrCodeAndReasonNamesCoverAllValues) {
  EXPECT_STREQ(ErrCodeName(ErrCode::kQuotaExceeded), "quota_exceeded");
  EXPECT_STREQ(ErrCodeName(ErrCode::kServerBusy), "server_busy");
  EXPECT_STREQ(StreamEndReasonName(StreamEndReason::kSlowConsumer),
               "slow_consumer");
}

}  // namespace
}  // namespace dhyfd::net
