#include "algo/dhyfd.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::HoldsBruteForce;
using testutil::RandomRelation;

TEST(DhyfdTest, MatchesBruteForceOnRandomData) {
  for (int seed = 1; seed <= 12; ++seed) {
    Relation r = RandomRelation(seed * 19, 40, 5, 3);
    DiscoveryResult res = Dhyfd().discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "") << "seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size()) << "seed=" << seed;
  }
}

TEST(DhyfdTest, OutputLeftReducedAndValid) {
  Relation r = RandomRelation(7, 90, 6, 3);
  DiscoveryResult res = Dhyfd().discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
  for (const Fd& fd : res.fds.fds) {
    EXPECT_TRUE(HoldsBruteForce(r, fd)) << fd.to_string();
  }
}

TEST(DhyfdTest, ConstantKeyAndDerivedColumns) {
  // col0 constant; col1 key; col2 random; col3 = f(col2).
  Relation r = FromValues({
      {9, 0, 0, 10}, {9, 1, 0, 10}, {9, 2, 1, 11}, {9, 3, 1, 11}, {9, 4, 2, 12}});
  DiscoveryResult res = Dhyfd().discover(r);
  bool constant = false, derived = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{}, 0)) constant = true;
    if (fd == Fd(AttributeSet{2}, 3)) derived = true;
  }
  EXPECT_TRUE(constant);
  EXPECT_TRUE(derived);
}

TEST(DhyfdTest, RatioThresholdDoesNotChangeOutput) {
  Relation r = RandomRelation(43, 120, 6, 3);
  FdSet expected = BruteForceDiscover(r);
  for (double ratio : {0.1, 1.0, 3.0, 100.0}) {
    DhyfdOptions opt;
    opt.ratio_threshold = ratio;
    DiscoveryResult res = Dhyfd(opt).discover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 6), "") << "ratio=" << ratio;
  }
}

TEST(DhyfdTest, DdmDisabledStillExact) {
  Relation r = RandomRelation(47, 100, 5, 3);
  DhyfdOptions opt;
  opt.enable_ddm = false;
  DiscoveryResult res = Dhyfd(opt).discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 5), "");
  EXPECT_EQ(res.stats.ddm_updates, 0);
}

TEST(DhyfdTest, AggressiveRatioTriggersDdmUpdates) {
  // Valid level-2 FD {0,1} -> 2 plus a level-3 FD {0,1,4} -> 3 sharing the
  // path prefix 0 -> 1: after validating level 2 the prefix node is
  // reusable and efficiency is positive, so an eager ratio threshold must
  // trigger a DDM refresh.
  Random rng(4242);
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 400; ++i) {
    int a = static_cast<int>(rng.next_below(20));
    int b = static_cast<int>(rng.next_below(10));
    int e = static_cast<int>(rng.next_below(5));
    int f = static_cast<int>(rng.next_below(3));
    rows.push_back({a, b, (a * 3 + b) % 17, (a + 2 * b + 5 * e) % 19, e, f});
  }
  Relation r = testutil::FromValues(rows);
  DhyfdOptions opt;
  opt.ratio_threshold = 0.01;  // refresh eagerly
  DiscoveryResult res = Dhyfd(opt).discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 6), "");
  EXPECT_GE(res.stats.ddm_updates, 1);
}

TEST(DhyfdTest, TallRelation) {
  Relation r = RandomRelation(53, 800, 4, 8);
  DiscoveryResult res = Dhyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 4), "");
}

TEST(DhyfdTest, WideRelation) {
  Relation r = RandomRelation(59, 50, 9, 2);
  DiscoveryResult res = Dhyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 9), "");
}

TEST(DhyfdTest, EmptyAndTinyRelations) {
  DiscoveryResult res0 = Dhyfd().discover(FromValues({}));
  SUCCEED();
  DiscoveryResult res1 = Dhyfd().discover(FromValues({{1}}));
  EXPECT_EQ(res1.fds.size(), 1);
  DiscoveryResult res2 = Dhyfd().discover(FromValues({{1, 1}, {2, 2}}));
  // Column 0 <-> column 1 bijection: 0 -> 1 and 1 -> 0.
  EXPECT_EQ(res2.fds.size(), 2);
}

TEST(DhyfdTest, DuplicateHeavyData) {
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 60; ++i) rows.push_back({i / 10, i / 10, i / 20, i % 3});
  Relation r = testutil::FromValues(rows);
  DiscoveryResult res = Dhyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, 4), "");
}

TEST(DhyfdTest, StatsPopulated) {
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 200; ++i) {
    int a = i % 20, b = (i * 7) % 10;
    rows.push_back({a, b, (a * 3 + b) % 17, i % 4, (i * 5) % 6});
  }
  Relation r = testutil::FromValues(rows);
  DiscoveryResult res = Dhyfd().discover(r);
  EXPECT_GT(res.fds.size(), 0);
  EXPECT_GT(res.stats.validations, 0);
  EXPECT_GT(res.stats.sampled_non_fds, 0);
  EXPECT_GE(res.stats.levels, 1);
  EXPECT_GE(res.stats.seconds, 0);
}

TEST(DhyfdTest, NoFdsAtAllIsHandled) {
  Relation r = RandomRelation(61, 200, 5, 3);
  DiscoveryResult res = Dhyfd().discover(r);
  FdSet expected = BruteForceDiscover(r);
  EXPECT_EQ(res.fds.size(), expected.size());
}

}  // namespace
}  // namespace dhyfd
