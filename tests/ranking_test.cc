#include "ranking/ranking.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;

Relation NcvoterLike() {
  // col0: constant "state"; col1: zip; col2: city = f(zip); col3: id (key).
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 12; ++i) rows.push_back({7, i % 3, (i % 3) * 10, i});
  return FromValues(rows);
}

TEST(RankingTest, RanksByDescendingRedundancy) {
  Relation r = NcvoterLike();
  FdSet cover;
  cover.add(Fd(AttributeSet{3}, 1));  // key LHS: 0 redundancy
  cover.add(Fd(AttributeSet{}, 0));   // constant: 12
  cover.add(Fd(AttributeSet{1}, 2));  // zip -> city: 12
  auto ranked = RankFds(r, cover);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_GE(RedundancyCount(ranked[0], RedundancyMode::kExcludingNullRhs),
            RedundancyCount(ranked[1], RedundancyMode::kExcludingNullRhs));
  EXPECT_GE(RedundancyCount(ranked[1], RedundancyMode::kExcludingNullRhs),
            RedundancyCount(ranked[2], RedundancyMode::kExcludingNullRhs));
  EXPECT_EQ(ranked[2].fd.lhs, AttributeSet{3});
}

TEST(RankingTest, RedundancyCountModes) {
  FdRedundancy red;
  red.with_nulls = 10;
  red.excluding_null_rhs = 7;
  red.excluding_null_lhs_rhs = 5;
  EXPECT_EQ(RedundancyCount(red, RedundancyMode::kWithNulls), 10);
  EXPECT_EQ(RedundancyCount(red, RedundancyMode::kExcludingNullRhs), 7);
  EXPECT_EQ(RedundancyCount(red, RedundancyMode::kExcludingNullBoth), 5);
}

TEST(RankingTest, HistogramBucketsMatchPaperShape) {
  std::vector<FdRedundancy> reds(5);
  reds[0].excluding_null_rhs = 0;
  reds[1].excluding_null_rhs = 1;    // within 2.5% of max=1000? no: 1 <= 25
  reds[2].excluding_null_rhs = 100;  // (50,100]
  reds[3].excluding_null_rhs = 1000;
  reds[4].excluding_null_rhs = 600;
  RedundancyHistogram h =
      BuildRedundancyHistogram(reds, RedundancyMode::kExcludingNullRhs);
  EXPECT_EQ(h.max_redundancy, 1000);
  ASSERT_EQ(h.thresholds.size(), 10u);
  EXPECT_EQ(h.thresholds[0], 0);
  EXPECT_EQ(h.thresholds[1], 25);  // 2.5% of 1000
  EXPECT_EQ(h.fd_counts[0], 1);    // exactly zero
  EXPECT_EQ(h.fd_counts[1], 1);    // (0, 25]
  // Total FDs preserved.
  int64_t total = 0;
  for (int64_t c : h.fd_counts) total += c;
  EXPECT_EQ(total, 5);
}

TEST(RankingTest, HistogramHandlesAllZero) {
  std::vector<FdRedundancy> reds(3);
  RedundancyHistogram h = BuildRedundancyHistogram(reds, RedundancyMode::kWithNulls);
  EXPECT_EQ(h.max_redundancy, 0);
  EXPECT_EQ(h.fd_counts[0], 3);
}

TEST(RankingTest, HistogramEmptyInput) {
  RedundancyHistogram h = BuildRedundancyHistogram({}, RedundancyMode::kWithNulls);
  int64_t total = 0;
  for (int64_t c : h.fd_counts) total += c;
  EXPECT_EQ(total, 0);
}

TEST(RankingTest, LhsCandidatesForColumn) {
  Relation r = NcvoterLike();
  FdSet cover;
  cover.add(Fd(AttributeSet{1}, 2));          // zip -> city
  cover.add(Fd(AttributeSet{3}, AttributeSet{1, 2}));  // id -> zip, city
  cover.add(Fd(AttributeSet{}, 0));           // unrelated to city
  auto candidates = LhsCandidatesForColumn(r, cover, 2);
  ASSERT_EQ(candidates.size(), 2u);
  // Each candidate's FD targets exactly the requested column.
  for (const auto& c : candidates) EXPECT_EQ(c.fd.rhs, AttributeSet{2});
  // zip -> city causes more redundancy than the key LHS.
  EXPECT_EQ(candidates[0].fd.lhs, AttributeSet{1});
}

TEST(RankingTest, FormatRankingListsTopN) {
  Relation r = NcvoterLike();
  FdSet cover;
  cover.add(Fd(AttributeSet{}, 0));
  cover.add(Fd(AttributeSet{1}, 2));
  auto ranked = RankFds(r, cover);
  std::string text = FormatRanking(r.schema(), ranked, 1);
  EXPECT_NE(text.find("1. "), std::string::npos);
  EXPECT_NE(text.find("more)"), std::string::npos);
  std::string full = FormatRanking(r.schema(), ranked, 10);
  EXPECT_EQ(full.find("more)"), std::string::npos);
}

}  // namespace
}  // namespace dhyfd
