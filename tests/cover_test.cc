#include "fd/cover.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

TEST(CoverTest, CanonicalRemovesTransitiveRedundancy) {
  // Left-reduced but redundant: A -> B, B -> C, A -> C. The last FD is
  // implied by transitivity.
  FdSet lr;
  lr.add(Fd(AttributeSet{0}, 1));
  lr.add(Fd(AttributeSet{1}, 2));
  lr.add(Fd(AttributeSet{0}, 2));
  FdSet can = CanonicalCover(lr, 3);
  EXPECT_EQ(can.size(), 2);
  EXPECT_TRUE(CoversEquivalent(lr, can, 3));
  EXPECT_TRUE(IsNonRedundant(can, 3));
  EXPECT_TRUE(HasUniqueLhs(can));
}

TEST(CoverTest, CanonicalMergesEqualLhs) {
  FdSet lr;
  lr.add(Fd(AttributeSet{0}, 1));
  lr.add(Fd(AttributeSet{0}, 2));
  FdSet can = CanonicalCover(lr, 3);
  ASSERT_EQ(can.size(), 1);
  EXPECT_EQ(can.fds[0].rhs, (AttributeSet{1, 2}));
}

TEST(CoverTest, CanonicalOfIrredundantIsIdentity) {
  FdSet lr;
  lr.add(Fd(AttributeSet{0}, 1));
  lr.add(Fd(AttributeSet{2}, 3));
  FdSet can = CanonicalCover(lr, 4);
  EXPECT_EQ(can.size(), 2);
  EXPECT_EQ(can.attribute_occurrences(), 4);
}

TEST(CoverTest, LeftReduce) {
  // AB -> C where already A -> C: LHS shrinks to A.
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 2));
  fds.add(Fd(AttributeSet{0, 1}, 2));
  FdSet reduced = LeftReduce(fds, 3);
  EXPECT_EQ(reduced.size(), 1);
  EXPECT_EQ(reduced.fds[0].lhs, AttributeSet{0});
  EXPECT_TRUE(IsLeftReduced(reduced, 3));
}

TEST(CoverTest, LeftReduceDropsTrivial) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0, 1}, 1));  // trivial
  FdSet reduced = LeftReduce(fds, 3);
  EXPECT_EQ(reduced.size(), 0);
}

TEST(CoverTest, IsLeftReducedDetectsReducible) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 2));
  fds.add(Fd(AttributeSet{0, 1}, 2));
  EXPECT_FALSE(IsLeftReduced(fds, 3));
}

TEST(CoverTest, IsNonRedundantDetectsRedundant) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{1}, 2));
  fds.add(Fd(AttributeSet{0}, 2));
  EXPECT_FALSE(IsNonRedundant(fds, 3));
}

TEST(CoverTest, HasUniqueLhs) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{0}, 2));
  EXPECT_FALSE(HasUniqueLhs(fds));
  FdSet merged = fds.with_merged_lhs();
  EXPECT_TRUE(HasUniqueLhs(merged));
}

TEST(CoverTest, ComputeCoverStats) {
  FdSet lr;
  lr.add(Fd(AttributeSet{0}, 1));
  lr.add(Fd(AttributeSet{1}, 2));
  lr.add(Fd(AttributeSet{0}, 2));
  CoverStats stats = ComputeCoverStats(lr, 3);
  EXPECT_EQ(stats.left_reduced_count, 3);
  EXPECT_EQ(stats.left_reduced_occurrences, 6);
  EXPECT_EQ(stats.canonical_count, 2);
  EXPECT_EQ(stats.canonical_occurrences, 4);
  EXPECT_NEAR(stats.percent_size, 100.0 * 2 / 3, 1e-9);
  EXPECT_GE(stats.seconds, 0);
}

TEST(CoverTest, EmptyCover) {
  FdSet empty;
  FdSet can = CanonicalCover(empty, 4);
  EXPECT_TRUE(can.empty());
  CoverStats stats = ComputeCoverStats(empty, 4);
  EXPECT_EQ(stats.percent_size, 0);
}

TEST(CoverTest, ConstantColumnsFd) {
  // {} -> A plus A -> B collapses: {} -> A makes A -> B equivalent to
  // {} -> B, so a canonical cover can keep {} -> {A, B}.
  FdSet lr;
  lr.add(Fd(AttributeSet{}, 0));
  lr.add(Fd(AttributeSet{}, 1));
  FdSet can = CanonicalCover(lr, 3);
  ASSERT_EQ(can.size(), 1);
  EXPECT_EQ(can.fds[0].lhs, AttributeSet{});
  EXPECT_EQ(can.fds[0].rhs, (AttributeSet{0, 1}));
}

// Property sweep: canonical covers of random FD sets are always equivalent,
// non-redundant, and unique-LHS.
class CanonicalSweep : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalSweep, InvariantsHold) {
  Random rng(GetParam() * 977 + 5);
  int n = 5 + static_cast<int>(rng.next_below(4));
  FdSet fds;
  int count = 3 + static_cast<int>(rng.next_below(15));
  for (int i = 0; i < count; ++i) {
    AttributeSet lhs;
    int lhs_size = static_cast<int>(rng.next_below(3));
    for (int k = 0; k < lhs_size; ++k) lhs.set(static_cast<AttrId>(rng.next_below(n)));
    AttrId rhs = static_cast<AttrId>(rng.next_below(n));
    if (lhs.test(rhs)) continue;
    fds.add(Fd(lhs, rhs));
  }
  FdSet lr = LeftReduce(fds, n);
  EXPECT_TRUE(IsLeftReduced(lr, n));
  EXPECT_TRUE(CoversEquivalent(fds, lr, n));
  FdSet can = CanonicalCover(lr, n);
  EXPECT_TRUE(CoversEquivalent(lr, can, n));
  EXPECT_TRUE(IsNonRedundant(can, n));
  EXPECT_TRUE(HasUniqueLhs(can));
  EXPECT_LE(can.size(), lr.with_singleton_rhs().with_merged_lhs().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace dhyfd
