#include "core/profiler.h"

#include <gtest/gtest.h>

#include "datagen/benchmark_data.h"
#include "test_util.h"

namespace dhyfd {
namespace {

RawTable SmallTable() {
  RawTable t;
  t.header = {"state", "zip", "city", "id"};
  for (int i = 0; i < 30; ++i) {
    t.rows.push_back({"nc", "z" + std::to_string(i % 4),
                      "c" + std::to_string(i % 4), std::to_string(i)});
  }
  return t;
}

TEST(ProfilerTest, FullPipeline) {
  ProfileReport report = Profiler().profile(SmallTable());
  EXPECT_EQ(report.schema.size(), 4);
  EXPECT_GT(report.left_reduced.size(), 0);
  EXPECT_GT(report.canonical.size(), 0);
  EXPECT_LE(report.canonical.size(), report.left_reduced.size());
  EXPECT_EQ(report.ranking.size(), static_cast<size_t>(report.canonical.size()));
  EXPECT_GT(report.dataset_redundancy.red_plus0, 0);
}

TEST(ProfilerTest, FindsPlantedStructure) {
  ProfileReport report = Profiler().profile(SmallTable());
  AttrId state = report.schema.index_of("state");
  bool constant_state = false, zip_city = false;
  for (const Fd& fd : report.left_reduced.fds) {
    if (fd.lhs.empty() && fd.rhs.test(state)) constant_state = true;
    if (fd.lhs == AttributeSet::single(report.schema.index_of("zip")) &&
        fd.rhs.test(report.schema.index_of("city"))) {
      zip_city = true;
    }
  }
  EXPECT_TRUE(constant_state);
  EXPECT_TRUE(zip_city);
}

TEST(ProfilerTest, AlgorithmsInterchangeable) {
  RawTable t = SmallTable();
  ProfileOptions base;
  base.compute_ranking = false;
  ProfileReport ref = Profiler(base).profile(t);
  for (const std::string& name : AllDiscoveryNames()) {
    ProfileOptions opt = base;
    opt.algorithm = name;
    ProfileReport rep = Profiler(opt).profile(t);
    EXPECT_EQ(rep.left_reduced.size(), ref.left_reduced.size()) << name;
  }
}

TEST(ProfilerTest, DisablingStagesSkipsWork) {
  ProfileOptions opt;
  opt.compute_canonical = false;
  opt.compute_ranking = false;
  ProfileReport rep = Profiler(opt).profile(SmallTable());
  EXPECT_TRUE(rep.canonical.empty());
  EXPECT_TRUE(rep.ranking.empty());
}

TEST(ProfilerTest, RankingWithoutCanonicalUsesLeftReduced) {
  ProfileOptions opt;
  opt.compute_canonical = false;
  ProfileReport rep = Profiler(opt).profile(SmallTable());
  EXPECT_EQ(rep.ranking.size(), static_cast<size_t>(rep.left_reduced.size()));
}

TEST(ProfilerTest, NullSemanticsOption) {
  RawTable t;
  t.header = {"a", "b"};
  t.rows = {{"", "x"}, {"", "x"}, {"1", "y"}};
  ProfileOptions eq;
  ProfileOptions neq;
  neq.semantics = NullSemantics::kNullNotEqualsNull;
  ProfileReport rep_eq = Profiler(eq).profile(t);
  ProfileReport rep_neq = Profiler(neq).profile(t);
  // Under null != null, column a becomes unique, so a -> b holds there and
  // its LHS can shrink the cover differently; both must stay self-valid.
  EXPECT_GT(rep_eq.left_reduced.size(), 0);
  EXPECT_GT(rep_neq.left_reduced.size(), 0);
}

TEST(ProfilerTest, SummaryMentionsKeyFigures) {
  ProfileReport rep = Profiler().profile(SmallTable());
  std::string s = rep.summary();
  EXPECT_NE(s.find("left-reduced cover"), std::string::npos);
  EXPECT_NE(s.find("canonical cover"), std::string::npos);
  EXPECT_NE(s.find("redundancy"), std::string::npos);
}

TEST(ProfilerTest, WorksOnGeneratedBenchmark) {
  RawTable t = GenerateBenchmark("bridges", 108);
  ProfileReport rep = Profiler().profile(t);
  EXPECT_GT(rep.left_reduced.size(), 0);
  EXPECT_LE(rep.canonical.size(), rep.left_reduced.size());
}

}  // namespace
}  // namespace dhyfd
