#include "net/admission.h"
#include "net/credit.h"

#include <gtest/gtest.h>

#include <vector>

namespace dhyfd::net {
namespace {

std::vector<std::uint8_t> Ev(std::uint8_t tag) { return {tag}; }

TEST(CreditWindowTest, SendsWhileCreditsHeldThenBuffers) {
  CreditWindow w(/*initial=*/2, /*credit_max=*/8, /*max_buffered=*/2);
  EXPECT_EQ(w.credits(), 2u);
  EXPECT_EQ(w.push(Ev(1)), CreditWindow::Push::kSend);
  EXPECT_EQ(w.push(Ev(2)), CreditWindow::Push::kSend);
  EXPECT_EQ(w.credits(), 0u);
  EXPECT_TRUE(w.stalled());
  EXPECT_EQ(w.push(Ev(3)), CreditWindow::Push::kBuffered);
  EXPECT_EQ(w.push(Ev(4)), CreditWindow::Push::kBuffered);
  EXPECT_EQ(w.buffered(), 2u);
  // Buffer full: the next event is the slow-consumer verdict.
  EXPECT_EQ(w.push(Ev(5)), CreditWindow::Push::kOverflow);
  EXPECT_EQ(w.overflowed(), 1u);
}

TEST(CreditWindowTest, GrantFlushesBufferedOldestFirst) {
  CreditWindow w(0, 8, 4);
  EXPECT_EQ(w.push(Ev(10)), CreditWindow::Push::kBuffered);
  EXPECT_EQ(w.push(Ev(11)), CreditWindow::Push::kBuffered);
  EXPECT_EQ(w.push(Ev(12)), CreditWindow::Push::kBuffered);

  // Grant 2: the two oldest flush, each consuming one credit.
  std::vector<std::vector<std::uint8_t>> out = w.grant(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0], 10);
  EXPECT_EQ(out[1][0], 11);
  EXPECT_EQ(w.credits(), 0u);
  EXPECT_EQ(w.buffered(), 1u);

  // Grant more than needed: the last one flushes and a credit remains.
  out = w.grant(2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 12);
  EXPECT_EQ(w.credits(), 1u);
  EXPECT_EQ(w.sent(), 3u);
}

TEST(CreditWindowTest, GrantsClampAtCreditMax) {
  CreditWindow w(0, 4, 0);
  w.grant(1000);
  EXPECT_EQ(w.credits(), 4u);
  // Clamp also applies to the initial grant.
  CreditWindow w2(1000, 4, 0);
  EXPECT_EQ(w2.credits(), 4u);
}

TEST(CreditWindowTest, GrantOverflowProofNearUint32Max) {
  CreditWindow w(0, 0xffffffffu, 0);
  w.grant(0xffffffffu);
  w.grant(0xffffffffu);  // would wrap if summed in 32 bits
  EXPECT_EQ(w.credits(), 0xffffffffu);
}

TEST(CreditWindowTest, ZeroBufferingMeansFirstStallIsOverflow) {
  CreditWindow w(1, 4, 0);
  EXPECT_EQ(w.push(Ev(1)), CreditWindow::Push::kSend);
  EXPECT_EQ(w.push(Ev(2)), CreditWindow::Push::kOverflow);
}

TEST(CreditWindowTest, PeakBufferedTracksHighWater) {
  CreditWindow w(0, 8, 8);
  for (int i = 0; i < 5; ++i) w.push(Ev(static_cast<std::uint8_t>(i)));
  w.grant(5);
  w.push(Ev(9));
  EXPECT_EQ(w.peak_buffered(), 5u);
}

TEST(TokenBucketTest, BurstThenRefill) {
  TokenBucket b(/*rate=*/10, /*burst=*/3);
  double t = 100.0;
  EXPECT_TRUE(b.try_take(t));
  EXPECT_TRUE(b.try_take(t));
  EXPECT_TRUE(b.try_take(t));
  EXPECT_FALSE(b.try_take(t)) << "burst exhausted";
  // 0.15 s at 10 tokens/s refills 1.5 tokens: one take fits, two do not.
  t += 0.15;
  EXPECT_TRUE(b.try_take(t));
  EXPECT_FALSE(b.try_take(t));
}

TEST(TokenBucketTest, RefillNeverExceedsBurst) {
  TokenBucket b(10, 2);
  double t = 0.0;
  EXPECT_TRUE(b.try_take(t));
  t += 1000;  // an hour of idling refills to burst, not rate*dt
  EXPECT_TRUE(b.try_take(t));
  EXPECT_TRUE(b.try_take(t));
  EXPECT_FALSE(b.try_take(t));
}

TEST(TokenBucketTest, NonMonotoneClockIsHarmless) {
  TokenBucket b(10, 1);
  EXPECT_TRUE(b.try_take(50.0));
  EXPECT_FALSE(b.try_take(40.0));  // clock went backwards: no refill, no throw
  EXPECT_TRUE(b.try_take(50.2));
}

TEST(TokenBucketTest, ZeroRateDisablesQuota) {
  TokenBucket b(0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_take(1.0));
}

TEST(InflightWindowTest, BoundsAndReleases) {
  InflightWindow w(2);
  EXPECT_TRUE(w.try_acquire());
  EXPECT_TRUE(w.try_acquire());
  EXPECT_FALSE(w.try_acquire());
  EXPECT_EQ(w.inflight(), 2u);
  w.release();
  EXPECT_TRUE(w.try_acquire());
  EXPECT_EQ(w.max(), 2u);
}

TEST(InflightWindowTest, ZeroMaxDisables) {
  InflightWindow w(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(w.try_acquire());
}

TEST(InflightWindowTest, ExtraReleaseDoesNotUnderflow) {
  InflightWindow w(1);
  w.release();
  EXPECT_EQ(w.inflight(), 0u);
  EXPECT_TRUE(w.try_acquire());
  EXPECT_FALSE(w.try_acquire());
}

}  // namespace
}  // namespace dhyfd::net
