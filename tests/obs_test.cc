#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/obs_schema.gen.h"
#include "obs/prometheus.h"
#include "obs/session.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "service/metrics.h"

namespace dhyfd {
namespace {

// The global tracer is a process-wide singleton and its buffers accumulate
// for the life of the process, so every test works on deltas / filtered
// drains and restores the stopped state on exit.

std::vector<TraceEvent> EventsNamed(const char* name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : Tracer::Global().drain()) {
    if (e.name != nullptr && std::string(e.name) == name) out.push_back(e);
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TracerTest, RecordsNothingWhenStopped) {
  Tracer& tracer = Tracer::Global();
  tracer.stop();
  std::size_t before = tracer.event_count();
  {
    TraceSpan span("obs.test.stopped");
  }
  tracer.record(TraceEvent{"obs.test.stopped", 'i', 0, 0, 0, 0, 0});
  EXPECT_EQ(tracer.event_count(), before);
  EXPECT_TRUE(EventsNamed("obs.test.stopped").empty());
}

TEST(TracerTest, SpanCoversScopeAndCarriesTraceId) {
  Tracer& tracer = Tracer::Global();
  tracer.start();
  {
    TraceIdScope id_scope(4242);
    TraceSpan span("obs.test.span");
  }
  tracer.stop();
  std::vector<TraceEvent> events = EventsNamed("obs.test.span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].trace_id, 4242u);
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GT(events[0].tid, 0u);
}

TEST(TracerTest, FinishEndsSpanEarlyAndIsIdempotent) {
  Tracer& tracer = Tracer::Global();
  tracer.start();
  {
    TraceSpan span("obs.test.finish");
    span.finish();
    span.finish();  // second call must not record again
  }
  tracer.stop();
  EXPECT_EQ(EventsNamed("obs.test.finish").size(), 1u);
}

TEST(TracerTest, RecordSpanUsesExplicitTimestampsAndLane) {
  Tracer& tracer = Tracer::Global();
  tracer.start();
  tracer.record_span("obs.test.explicit", 9, 100, 250, 777);
  tracer.stop();
  std::vector<TraceEvent> events = EventsNamed("obs.test.explicit");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_us, 100);
  EXPECT_EQ(events[0].dur_us, 150);
  EXPECT_EQ(events[0].tid, 777u);
  EXPECT_EQ(events[0].trace_id, 9u);
}

TEST(TracerTest, NextTraceIdNeverReturnsZeroAndIsUnique) {
  Tracer& tracer = Tracer::Global();
  std::uint64_t a = tracer.next_trace_id();
  std::uint64_t b = tracer.next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TracerTest, MultiThreadedRecordingCrossesChunkBoundaries) {
  // 4 threads x 10k events each: well past the 4096-events-per-chunk
  // capacity, so the per-thread chunk chains are exercised.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  Tracer& tracer = Tracer::Global();
  tracer.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(TraceEvent{"obs.test.mt", 'i', 0, 0, 0, 0, 0});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.stop();
  EXPECT_EQ(EventsNamed("obs.test.mt").size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(TracerTest, TraceTidsAreStablePerThreadAndDistinct) {
  std::uint32_t main_a = CurrentTraceTid();
  std::uint32_t main_b = CurrentTraceTid();
  EXPECT_EQ(main_a, main_b);
  std::uint32_t other = 0;
  std::thread([&other] { other = CurrentTraceTid(); }).join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, main_a);
}

TEST(TraceIdScopeTest, NestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    TraceIdScope outer(5);
    EXPECT_EQ(CurrentTraceId(), 5u);
    {
      TraceIdScope inner(7);
      EXPECT_EQ(CurrentTraceId(), 7u);
    }
    EXPECT_EQ(CurrentTraceId(), 5u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(ObsSinkTest, AddWithoutSinkIsANoop) {
  ASSERT_EQ(CurrentObsSink(), nullptr);
  ObsAdd("obs.test.nosink", 3);  // must not crash
}

TEST(ObsSinkTest, ScopeInstallsAndRestores) {
  struct CountingSink : ObsSink {
    std::int64_t total = 0;
    void add(const char*, std::int64_t delta) override { total += delta; }
  } sink;
  {
    ObsScope scope(&sink);
    EXPECT_EQ(CurrentObsSink(), &sink);
    ObsAdd("obs.test.counting", 2);
    ObsAdd("obs.test.counting");
  }
  EXPECT_EQ(CurrentObsSink(), nullptr);
  EXPECT_EQ(sink.total, 3);
  ObsAdd("obs.test.counting", 100);  // after the scope: dropped
  EXPECT_EQ(sink.total, 3);
}

TEST(TelemetrySinkTest, MirrorsCountersIntoRegistry) {
  MetricsRegistry metrics;
  TelemetrySink sink(&metrics);
  ObsScope scope(&sink);
  ObsAdd("obs.test.mirrored", 4);
  ObsAdd("obs.test.mirrored", 1);
  EXPECT_EQ(metrics.counter("obs.test.mirrored").value(), 5);
}

TEST(TelemetrySinkTest, EmitsCumulativeCounterSeriesWhenTracing) {
  MetricsRegistry metrics;
  Tracer& tracer = Tracer::Global();
  tracer.start();
  {
    TelemetrySink sink(&metrics, 31);
    ObsScope scope(&sink);
    ObsAdd("obs.test.series", 3);
    ObsAdd("obs.test.series", 4);
  }
  tracer.stop();
  std::vector<TraceEvent> events = EventsNamed("obs.test.series");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'C');
  EXPECT_EQ(events[0].value, 3);  // cumulative totals, not deltas
  EXPECT_EQ(events[1].value, 7);
  EXPECT_EQ(events[0].trace_id, 31u);
  EXPECT_EQ(events[1].trace_id, 31u);
}

TEST(ChromeTraceTest, WritesWellFormedEvents) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{"span.a", 'X', 12, 100, 50, 0, 3});
  events.push_back(TraceEvent{"series.b", 'C', 12, 120, 0, 42, 3});
  events.push_back(TraceEvent{"weird\"name\n", 'i', 0, 130, 0, 0, 1});
  std::ostringstream out;
  WriteChromeTrace(events, out);
  std::string json = out.str();

  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span.a\",\"cat\":\"dhyfd\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":12"), std::string::npos);
  // Specials in names are escaped, keeping the file parseable.
  EXPECT_NE(json.find("weird\\\"name\\n"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsSessionTest, InertWithNoPaths) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  ObsSession session({});
  EXPECT_FALSE(session.tracing());
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(CurrentObsSink(), nullptr);
}

TEST(ObsSessionTest, WritesTraceAndMetricsFilesOnDestruction) {
  std::string dir = ::testing::TempDir();
  std::string trace_path = dir + "/obs_test_trace.json";
  std::string metrics_path = dir + "/obs_test_metrics.prom";
  {
    ObsSessionOptions options;
    options.trace_path = trace_path;
    options.metrics_path = metrics_path;
    ObsSession session(options);
    EXPECT_TRUE(session.tracing());
    EXPECT_TRUE(Tracer::Global().enabled());
    TraceSpan span("obs.test.session_span");
    ObsAdd("obs.test.session_counter", 6);
  }
  EXPECT_FALSE(Tracer::Global().enabled());

  std::string trace = ReadFile(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("obs.test.session_span"), std::string::npos);
  std::string prom = ReadFile(metrics_path);
  EXPECT_NE(prom.find("# TYPE dhyfd_obs_test_session_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("dhyfd_obs_test_session_counter 6"), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

// ---- generated observability schema (src/obs/obs_schema.gen.h) ----------

// The layer.noun[_verb] grammar from DESIGN.md "Observability": dotted
// lowercase, >= 2 segments, first segment = owning subsystem. Mirrors
// OBS_NAME_RE in tools/analyze/obs_grammar.py.
bool FollowsObsGrammar(std::string_view name) {
  auto segment_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  };
  if (name.empty() || name.front() < 'a' || name.front() > 'z') return false;
  std::size_t segments = 1;
  char prev = '\0';
  for (char c : name) {
    if (c == '.') {
      if (prev == '.' || prev == '\0') return false;  // empty segment
      ++segments;
    } else if (!segment_char(c)) {
      return false;
    }
    prev = c;
  }
  return prev != '.' && segments >= 2;
}

TEST(ObsSchemaTest, EveryGeneratedNameFollowsTheGrammar) {
  ASSERT_GT(kObsSchemaNameCount, 0u);
  for (std::string_view name : kObsSchemaNames) {
    EXPECT_TRUE(FollowsObsGrammar(name)) << "schema name violates "
        "layer.noun[_verb] grammar: " << name;
  }
}

TEST(ObsSchemaTest, NamesTableIsSortedAndUnique) {
  // ObsSchemaMatches binary-searches kObsSchemaNames; the generator must
  // emit it sorted with no duplicates or lookups silently miss.
  for (std::size_t i = 1; i < kObsSchemaNameCount; ++i) {
    EXPECT_LT(kObsSchemaNames[i - 1], kObsSchemaNames[i]);
  }
}

TEST(ObsSchemaTest, MatchesExactNamesAndPatterns) {
  EXPECT_TRUE(ObsSchemaMatches(kObsJobsSubmitted));
  EXPECT_TRUE(ObsSchemaMatches(kObsProfileDiscover));
  // Dynamically composed names are admitted by the wildcard patterns.
  EXPECT_TRUE(ObsSchemaMatches("net.rpc.submit_discovery.ok_seconds"));
  EXPECT_TRUE(ObsSchemaMatches("stage.encode_seconds"));
  EXPECT_FALSE(ObsSchemaMatches("net.rpc.bogus"));         // no _seconds tail
  EXPECT_FALSE(ObsSchemaMatches("discover.validator.callz"));  // typo
  EXPECT_FALSE(ObsSchemaMatches(""));
}

TEST(ObsSchemaTest, PrometheusExpositionIsSubsetOfSchema) {
  // Golden subset property: every family a real registry exports maps back
  // to a registered schema name (or wildcard pattern). Uses the same
  // constants production code uses, plus the two dynamic families.
  MetricsRegistry metrics;
  metrics.counter(kObsJobsSubmitted).inc();
  metrics.counter(kObsNetFramesRx).inc(3);
  metrics.gauge(kObsJobsRunning).set(1);
  metrics.histogram(kObsJobsRunSeconds).record(0.25);
  metrics.histogram("net.rpc.submit_discovery.ok_seconds").record(0.01);
  metrics.histogram("stage.encode_seconds").record(0.001);

  std::string text = PrometheusText(metrics);
  auto check = [&](const std::map<std::string, std::int64_t>& values) {
    for (const auto& [name, unused] : values) {
      EXPECT_TRUE(ObsSchemaMatches(name))
          << "exported metric not in obs_schema.json: " << name;
      EXPECT_NE(text.find(PrometheusName(name)), std::string::npos)
          << "registered metric missing from exposition: " << name;
    }
  };
  check(metrics.counter_values());
  check(metrics.gauge_values());  // includes the process.* gauges
  for (const auto& [name, unused] : metrics.histogram_values()) {
    EXPECT_TRUE(ObsSchemaMatches(name))
        << "exported histogram not in obs_schema.json: " << name;
    EXPECT_NE(text.find(PrometheusName(name) + "_count"), std::string::npos);
  }
}

TEST(ObsSchemaTest, WildcardNeverCrossesDots) {
  // `*` is a single-segment wildcard; a name with extra segments must not
  // sneak through a pattern.
  EXPECT_TRUE(ObsWildcardMatch("stage.*_seconds", "stage.rank_seconds"));
  EXPECT_FALSE(ObsWildcardMatch("stage.*_seconds", "stage.a.b_seconds"));
  EXPECT_FALSE(ObsWildcardMatch("stage.*_seconds", "stagex.rank_seconds"));
}

}  // namespace
}  // namespace dhyfd
