#include "algo/hitting_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace dhyfd {
namespace {

// Brute-force reference: enumerate all subsets of the universe, keep
// minimal hitting sets.
std::vector<AttributeSet> BruteForceMhs(const std::vector<AttributeSet>& family,
                                        int universe) {
  std::vector<AttributeSet> hits;
  for (uint32_t mask = 0; mask < (1u << universe); ++mask) {
    AttributeSet s;
    for (int i = 0; i < universe; ++i) {
      if ((mask >> i) & 1) s.set(i);
    }
    if (HitsAll(family, s)) hits.push_back(s);
  }
  std::vector<AttributeSet> minimal;
  for (const AttributeSet& s : hits) {
    bool dominated = false;
    for (const AttributeSet& t : hits) {
      if (t != s && t.is_subset_of(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(s);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(HittingSetTest, EmptyFamilyHasEmptyTransversal) {
  std::vector<AttributeSet> result = MinimalHittingSets({});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

TEST(HittingSetTest, EmptySetInFamilyMeansNoTransversal) {
  EXPECT_TRUE(MinimalHittingSets({AttributeSet{0}, AttributeSet{}}).empty());
}

TEST(HittingSetTest, SingleSet) {
  std::vector<AttributeSet> result =
      Sorted(MinimalHittingSets({AttributeSet{1, 3}}));
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], AttributeSet{1});
  EXPECT_EQ(result[1], AttributeSet{3});
}

TEST(HittingSetTest, TextbookExample) {
  // {0,1}, {1,2}, {0,2}: minimal transversals are all pairs.
  std::vector<AttributeSet> family = {AttributeSet{0, 1}, AttributeSet{1, 2},
                                      AttributeSet{0, 2}};
  std::vector<AttributeSet> result = Sorted(MinimalHittingSets(family));
  EXPECT_EQ(result, BruteForceMhs(family, 3));
  EXPECT_EQ(result.size(), 3u);
}

TEST(HittingSetTest, DisjointSetsMultiply) {
  std::vector<AttributeSet> family = {AttributeSet{0, 1}, AttributeSet{2, 3}};
  std::vector<AttributeSet> result = MinimalHittingSets(family);
  EXPECT_EQ(result.size(), 4u);  // cross product
  for (const AttributeSet& t : result) EXPECT_EQ(t.count(), 2);
}

TEST(HittingSetTest, SupersetSetsAreAbsorbed) {
  // {0} forces 0; {0,1,2} is then already hit.
  std::vector<AttributeSet> family = {AttributeSet{0}, AttributeSet{0, 1, 2}};
  std::vector<AttributeSet> result = MinimalHittingSets(family);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], AttributeSet{0});
}

TEST(HittingSetTest, MatchesBruteForceOnRandomFamilies) {
  for (int seed = 1; seed <= 20; ++seed) {
    Random rng(seed * 131);
    int universe = 4 + static_cast<int>(rng.next_below(4));  // 4..7
    int sets = 1 + static_cast<int>(rng.next_below(6));
    std::vector<AttributeSet> family;
    for (int i = 0; i < sets; ++i) {
      AttributeSet s;
      for (int a = 0; a < universe; ++a) {
        if (rng.next_bool(0.4)) s.set(a);
      }
      if (!s.empty()) family.push_back(s);
    }
    EXPECT_EQ(Sorted(MinimalHittingSets(family)), BruteForceMhs(family, universe))
        << "seed=" << seed;
  }
}

TEST(HittingSetTest, ResultsAreMinimalAndHitting) {
  std::vector<AttributeSet> family = {AttributeSet{0, 1, 2}, AttributeSet{2, 3},
                                      AttributeSet{1, 3, 4}, AttributeSet{0, 4}};
  std::vector<AttributeSet> result = MinimalHittingSets(family);
  for (const AttributeSet& t : result) {
    EXPECT_TRUE(HitsAll(family, t));
    t.for_each([&](AttrId a) {
      AttributeSet smaller = t;
      smaller.reset(a);
      EXPECT_FALSE(HitsAll(family, smaller)) << t.to_string();
    });
  }
}

TEST(HittingSetTest, MaxResultsCap) {
  // 8 disjoint pairs: 2^8 = 256 transversals; cap to 10.
  std::vector<AttributeSet> family;
  for (int i = 0; i < 8; ++i) family.push_back(AttributeSet{2 * i, 2 * i + 1});
  std::vector<AttributeSet> result = MinimalHittingSets(family, 10);
  EXPECT_EQ(result.size(), 10u);
}

TEST(HittingSetTest, DualityRoundTrip) {
  // Tr(Tr(H)) equals the minimal sets of H for simple hypergraphs.
  std::vector<AttributeSet> family = {AttributeSet{0, 1}, AttributeSet{1, 2},
                                      AttributeSet{3}};
  std::vector<AttributeSet> twice =
      Sorted(MinimalHittingSets(MinimalHittingSets(family)));
  EXPECT_EQ(twice, Sorted(family));
}

}  // namespace
}  // namespace dhyfd
