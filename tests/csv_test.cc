#include "relation/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace dhyfd {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  RawTable t = ParseCsvString("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesQuotedCells) {
  RawTable t = ParseCsvString("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows[0][0], "hello, world");
  EXPECT_EQ(t.rows[0][1], "say \"hi\"");
}

TEST(CsvTest, QuotedNewlineStaysInCell) {
  RawTable t = ParseCsvString("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows[0][0], "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  RawTable t = ParseCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(CsvTest, EmptyCellsPreserved) {
  RawTable t = ParseCsvString("a,b,c\n,,\nx,,z\n");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(t.rows[1][1], "");
}

TEST(CsvTest, HeaderlessSynthesizesNames) {
  CsvOptions opt;
  opt.has_header = false;
  RawTable t = ParseCsvString("1,2\n3,4\n", opt);
  EXPECT_EQ(t.header, (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(CsvTest, InconsistentArityThrows) {
  EXPECT_THROW(ParseCsvString("a,b\n1,2,3\n"), std::runtime_error);
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(ParseCsvString("a,b\n\"oops,2\n"), std::runtime_error);
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(ReadCsvFile("/nonexistent/nope.csv"), std::runtime_error);
}

TEST(CsvTest, EmptyInputYieldsEmptyTable) {
  RawTable t = ParseCsvString("");
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_cols(), 0);
}

TEST(CsvTest, HeaderOnly) {
  RawTable t = ParseCsvString("a,b,c\n");
  EXPECT_EQ(t.num_cols(), 3);
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(CsvTest, RoundTrip) {
  RawTable t;
  t.header = {"x", "y"};
  t.rows = {{"plain", "with,comma"}, {"with\"quote", "with\nnewline"}};
  std::string text = WriteCsvString(t);
  RawTable back = ParseCsvString(text);
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(CsvTest, CustomSeparator) {
  CsvOptions opt;
  opt.separator = ';';
  RawTable t = ParseCsvString("a;b\n1;2\n", opt);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvTest, NullTokens) {
  CsvOptions opt;
  EXPECT_TRUE(IsNullToken("", opt));
  EXPECT_TRUE(IsNullToken("?", opt));
  EXPECT_TRUE(IsNullToken("NULL", opt));
  EXPECT_FALSE(IsNullToken("0", opt));
}

TEST(CsvTest, ParseFromStream) {
  std::istringstream in("a\nx\ny\n");
  RawTable t = ParseCsv(in);
  EXPECT_EQ(t.num_rows(), 2);
}

}  // namespace
}  // namespace dhyfd
