#!/usr/bin/env bash
# CI entry point. Legs, in order:
#   1. invariant lint    — tools/check_invariants.py self-test + tree sweep
#   2. analyze           — tools/analyze/analyze.py self-test, tree sweep
#                          (layering + obs schema + switch exhaustiveness),
#                          seeded mis-architecture that must FAIL, generated
#                          header/dot drift gate, and a typo'd-constant smoke
#                          that must FAIL to compile
#   3. tier-1            — full -Werror build + every ctest
#   3. bench             — build-only compile of every bench/ harness
#   4. tsan              — concurrency tests under ThreadSanitizer, including
#                          the net server round-trip + backpressure suite
#   5. asan              — partition-arena tests, the wire-framing
#                          negative/fuzz-ish suite (incl. the query payload
#                          negatives), and the query lattice under ASan
#   6. ubsan             — bit-twiddling kernels under UBSan (non-recoverable)
#   7. thread-safety     — Clang Thread Safety Analysis as errors over src/,
#                          plus a seeded mis-annotation that must FAIL to
#                          compile (skipped with a notice when clang++ is not
#                          installed; the annotations compile to nothing off
#                          Clang, so the tree itself is unaffected)
#   8. obs               — --trace export produces valid Chrome trace JSON
#   9. tidy (opt-in)     — ./ci.sh --tidy runs clang-tidy over src/ via the
#                          compile database (needs clang-tidy installed)
#
# Usage: ./ci.sh [jobs] [--tidy]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"
RUN_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --tidy) RUN_TIDY=1 ;;
    *) JOBS="$arg" ;;
  esac
done

echo "=== invariant lint: rule self-test + repo sweep ==="
python3 tools/check_invariants.py --self-test
python3 tools/check_invariants.py --root .

echo
echo "=== analyze: layering + obs schema + exhaustiveness ==="
python3 tools/analyze/analyze.py --self-test
python3 tools/analyze/analyze.py --root .
# Negative control: a seeded mis-architecture (layer inversion, unregistered
# counter, non-exhaustive switch — one per pass) must make the analyzer exit
# nonzero, proving each pass bites.
if python3 tools/analyze/analyze.py \
     --root tools/analyze/fixtures/seeded \
     --config tools/analyze/fixtures/seeded > /dev/null 2>&1; then
  echo "FATAL: seeded fixture tree passed — the analyzer gate is inert" >&2
  exit 1
fi
# Drift gate: the checked-in generated header and include-graph dot must be
# byte-identical to what --fix regenerates from the manifests.
python3 tools/analyze/analyze.py --root . --fix
git diff --exit-code -- src/obs/obs_schema.gen.h tools/analyze/include_graph.dot
# Negative control: a typo'd kObs* constant must FAIL to compile — that is
# the whole point of generating constants instead of comparing strings.
if "${CXX:-c++}" -fsyntax-only -std=c++20 -Isrc \
     tools/obs_schema_smoke.cc 2> /dev/null; then
  echo "FATAL: obs_schema_smoke.cc compiled — the schema gate is inert" >&2
  exit 1
fi
echo "analyze OK (tree clean, seeded tree rejected, smoke typo rejected)"

echo
echo "=== tier-1: configure + build (-Werror) + ctest ==="
cmake -B build -S . -DDHYFD_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== bench: build-only compile of every bench/ target ==="
BENCH_TARGETS=()
for src in bench/bench_*.cc; do
  BENCH_TARGETS+=("$(basename "$src" .cc)")
done
cmake --build build -j "$JOBS" --target "${BENCH_TARGETS[@]}"

echo
echo "=== tsan: concurrency targets under ThreadSanitizer ==="
cmake -B build-tsan -S . -DDHYFD_SANITIZE=thread -DDHYFD_WERROR=ON
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test service_test live_store_test incr_property_test \
  obs_test trace_propagation_test net_credit_test net_server_test \
  net_http_test cost_ledger_test parallel_discovery_test
# halt_on_error makes any race abort the run; TSan also reports threads
# still running at exit, which covers the "zero leaked threads" check.
# obs_test / trace_propagation_test hammer the tracer's lock-free per-thread
# buffers and the trace-context handoff across pool workers.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/live_store_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/incr_property_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/trace_propagation_test
# net_server_test exercises full client/server round-trips, concurrent
# clients, credit-window backpressure, and graceful drain — the event loop,
# the ops pool, and the scheduler completion sweep all overlap here.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_credit_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_server_test
# net_http_test mixes HTTP connections into the same poll loop the RPC
# traffic uses (including a /healthz probe racing a draining shutdown);
# cost_ledger_test covers the thread-local sink install/forward/restore.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_http_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/cost_ledger_test
# parallel_discovery_test runs the sharded DHyFD/HyFD validators and the
# lock-sharded partition cache under real concurrency: the parallel ==
# sequential cover equivalence is asserted here with TSan watching the
# help-first shard claims, the obs-delta relay, and cache pin lifetimes.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_discovery_test

echo
echo "=== asan: partition arena indexing under AddressSanitizer ==="
# The CSR partition substrate is raw cursor arithmetic into a shared arena;
# out-of-bounds writes there are exactly what ASan catches. The TSan jobs
# above stay as-is — these kernels are single-threaded.
cmake -B build-asan -S . -DDHYFD_SANITIZE=address -DDHYFD_WERROR=ON
cmake --build build-asan -j "$JOBS" --target \
  partition_test partition_cache_test partition_intersect_test \
  net_wire_test query_test
./build-asan/tests/partition_test
./build-asan/tests/partition_cache_test
./build-asan/tests/partition_intersect_test
# net_wire_test feeds the frame decoder truncated frames, hostile length
# prefixes, and random byte soup — exactly the inputs where a missing bounds
# check would read past a buffer, which is ASan's home turf. The query
# payload negatives (truncated SubmitQuery specs, hostile column counts,
# absurd k/epsilon) ride in the same binary.
./build-asan/tests/net_wire_test
# query_test drives the top-k lattice and the g3 removal counter, both of
# which walk the shared CSR arena with raw cursors.
./build-asan/tests/query_test

echo
echo "=== ubsan: bit-twiddling kernels under UBSan (no recovery) ==="
# attribute_set's word masks, the CSR stripped-partition cursor sentinels,
# and the ranking math are where shifts/overflow/bad casts would hide;
# -fno-sanitize-recover=all turns the first hit into a nonzero exit.
cmake -B build-ubsan -S . -DDHYFD_SANITIZE=undefined -DDHYFD_WERROR=ON
cmake --build build-ubsan -j "$JOBS" --target \
  attribute_set_test partition_test partition_intersect_test \
  closure_test ranking_test query_topk_property_test
./build-ubsan/tests/attribute_set_test
./build-ubsan/tests/partition_test
./build-ubsan/tests/partition_intersect_test
./build-ubsan/tests/closure_test
./build-ubsan/tests/ranking_test
# The top-k oracle sweep exercises the score accumulation and the removal
# budget floor() edge where an overflow or bad cast would skew the rank.
./build-ubsan/tests/query_topk_property_test

echo
echo "=== thread-safety: Clang TSA over src/ (-Werror=thread-safety) ==="
if command -v clang++ > /dev/null 2>&1; then
  cmake -B build-threadsafety -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DDHYFD_THREAD_SAFETY=ON
  # The dhyfd library holds every annotated class; building it runs the
  # analysis over all mutex-holding TUs.
  cmake --build build-threadsafety -j "$JOBS" --target dhyfd
  # Negative control: a seeded mis-annotation must FAIL to compile, proving
  # the gate bites. tools/thread_safety_smoke.cc documents each planted bug.
  if clang++ -fsyntax-only -std=c++20 -Isrc \
       -Wthread-safety -Werror=thread-safety \
       tools/thread_safety_smoke.cc 2> /dev/null; then
    echo "FATAL: thread_safety_smoke.cc compiled — the TSA gate is inert" >&2
    exit 1
  fi
  echo "thread-safety OK (clean build + smoke mis-annotation rejected)"
else
  echo "SKIPPED: clang++ not installed; the annotations compile to nothing"
  echo "on this toolchain. Install clang to run the proof leg locally."
fi

echo
echo "=== obs: --trace export produces valid Chrome trace JSON ==="
cmake --build build -j "$JOBS" --target example_fd_service_demo
TRACE_OUT="$(mktemp /tmp/dhyfd_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/dhyfd_metrics.XXXXXX.prom)"
./build/examples/example_fd_service_demo 4 600 \
  --trace="$TRACE_OUT" --metrics="$METRICS_OUT" > /dev/null
python3 - "$TRACE_OUT" "$METRICS_OUT" <<'EOF'
import json, sys
trace_path, metrics_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    doc = json.load(f)  # parse failure -> nonzero exit -> CI failure
events = doc["traceEvents"]
assert len(events) > 0, "trace is empty"
ids = {e.get("args", {}).get("trace_id", 0) for e in events}
assert any(i != 0 for i in ids), "no job carried a trace id"
with open(metrics_path) as f:
    assert "# TYPE dhyfd_" in f.read(), "metrics export missing TYPE lines"
print(f"trace OK: {len(events)} events, {len(ids) - (0 in ids)} trace ids")
EOF
rm -f "$TRACE_OUT" "$METRICS_OUT"

if [[ "$RUN_TIDY" == 1 ]]; then
  echo
  echo "=== tidy: clang-tidy over src/ via the compile database ==="
  if command -v clang-tidy > /dev/null 2>&1; then
    # The tier-1 configure above exported build/compile_commands.json.
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"
    echo "tidy OK"
  else
    echo "SKIPPED: clang-tidy not installed."
  fi
fi

echo
echo "CI OK"
