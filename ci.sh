#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + every test), then a
# ThreadSanitizer build of the concurrency-heavy targets (thread pool and
# profiling service) so data races and leaked threads fail the pipeline.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== tsan: thread_pool_test + service_test under ThreadSanitizer ==="
cmake -B build-tsan -S . -DDHYFD_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target thread_pool_test service_test
# halt_on_error makes any race abort the run; TSan also reports threads
# still running at exit, which covers the "zero leaked threads" check.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test

echo
echo "CI OK"
