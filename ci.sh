#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + every test), a build-only
# compile of every bench/ harness (they are not executed in CI, but they
# must never rot), then a ThreadSanitizer build of the concurrency-heavy
# targets (thread pool, profiling service, live store) so data races and
# leaked threads fail the pipeline.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== bench: build-only compile of every bench/ target ==="
BENCH_TARGETS=()
for src in bench/bench_*.cc; do
  BENCH_TARGETS+=("$(basename "$src" .cc)")
done
cmake --build build -j "$JOBS" --target "${BENCH_TARGETS[@]}"

echo
echo "=== tsan: concurrency targets under ThreadSanitizer ==="
cmake -B build-tsan -S . -DDHYFD_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test service_test live_store_test incr_property_test \
  obs_test trace_propagation_test
# halt_on_error makes any race abort the run; TSan also reports threads
# still running at exit, which covers the "zero leaked threads" check.
# obs_test / trace_propagation_test hammer the tracer's lock-free per-thread
# buffers and the trace-context handoff across pool workers.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/live_store_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/incr_property_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/trace_propagation_test

echo
echo "=== asan: partition arena indexing under AddressSanitizer ==="
# The CSR partition substrate is raw cursor arithmetic into a shared arena;
# out-of-bounds writes there are exactly what ASan catches. The TSan jobs
# above stay as-is — these kernels are single-threaded.
cmake -B build-asan -S . -DDHYFD_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target \
  partition_test partition_cache_test partition_intersect_test
./build-asan/tests/partition_test
./build-asan/tests/partition_cache_test
./build-asan/tests/partition_intersect_test

echo
echo "=== obs: --trace export produces valid Chrome trace JSON ==="
cmake --build build -j "$JOBS" --target example_fd_service_demo
TRACE_OUT="$(mktemp /tmp/dhyfd_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/dhyfd_metrics.XXXXXX.prom)"
./build/examples/example_fd_service_demo 4 600 \
  --trace="$TRACE_OUT" --metrics="$METRICS_OUT" > /dev/null
python3 - "$TRACE_OUT" "$METRICS_OUT" <<'EOF'
import json, sys
trace_path, metrics_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    doc = json.load(f)  # parse failure -> nonzero exit -> CI failure
events = doc["traceEvents"]
assert len(events) > 0, "trace is empty"
ids = {e.get("args", {}).get("trace_id", 0) for e in events}
assert any(i != 0 for i in ids), "no job carried a trace id"
with open(metrics_path) as f:
    assert "# TYPE dhyfd_" in f.read(), "metrics export missing TYPE lines"
print(f"trace OK: {len(events)} events, {len(ids) - (0 in ids)} trace ids")
EOF
rm -f "$TRACE_OUT" "$METRICS_OUT"

echo
echo "CI OK"
