#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + every test), a build-only
# compile of every bench/ harness (they are not executed in CI, but they
# must never rot), then a ThreadSanitizer build of the concurrency-heavy
# targets (thread pool, profiling service, live store) so data races and
# leaked threads fail the pipeline.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== bench: build-only compile of every bench/ target ==="
BENCH_TARGETS=()
for src in bench/bench_*.cc; do
  BENCH_TARGETS+=("$(basename "$src" .cc)")
done
cmake --build build -j "$JOBS" --target "${BENCH_TARGETS[@]}"

echo
echo "=== tsan: concurrency targets under ThreadSanitizer ==="
cmake -B build-tsan -S . -DDHYFD_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test service_test live_store_test incr_property_test
# halt_on_error makes any race abort the run; TSan also reports threads
# still running at exit, which covers the "zero leaked threads" check.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/live_store_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/incr_property_test

echo
echo "CI OK"
